package dataset

import (
	"math"
	"math/rand"
	"testing"

	"alid/internal/vec"
)

func TestMixtureRegimeSizes(t *testing.T) {
	cases := []struct {
		regime Regime
		n      int
		want   int // expected a*
	}{
		{RegimeOmega, 2000, 100},                         // ω·n/20 = 2000/20
		{RegimeEta, 2000, int(math.Pow(2000, 0.9)) / 20}, // n^0.9/20
		{RegimeCap, 2000, 50},                            // P/20 = 1000/20
		{RegimeCap, 100000, 50},                          // cap independent of n
	}
	for _, c := range cases {
		cfg := DefaultMixtureConfig(c.n, c.regime)
		got := cfg.ClusterSize()
		if got != c.want {
			t.Errorf("%v n=%d: ClusterSize = %d, want %d", c.regime, c.n, got, c.want)
		}
	}
}

func TestMixtureGeneration(t *testing.T) {
	for _, regime := range []Regime{RegimeOmega, RegimeEta, RegimeCap} {
		cfg := DefaultMixtureConfig(3000, regime)
		ds, err := Mixture(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ds.N() != 3000 {
			t.Errorf("%v: N = %d", regime, ds.N())
		}
		if ds.NumClusters != 20 {
			t.Errorf("%v: clusters = %d", regime, ds.NumClusters)
		}
		sizes := ds.ClusterSizes()
		aStar := cfg.ClusterSize()
		for c, s := range sizes {
			if s != aStar {
				t.Errorf("%v: cluster %d size %d, want %d", regime, c, s, aStar)
			}
		}
		wantNoise := 3000 - 20*aStar
		if ds.NoiseCount() != wantNoise {
			t.Errorf("%v: noise = %d, want %d", regime, ds.NoiseCount(), wantNoise)
		}
		if ds.SuggestedK <= 0 || ds.SuggestedLSHR <= 0 {
			t.Errorf("%v: scales not tuned: %v %v", regime, ds.SuggestedK, ds.SuggestedLSHR)
		}
	}
}

func TestMixtureOmegaOneHasNoNoise(t *testing.T) {
	ds, err := Mixture(DefaultMixtureConfig(2000, RegimeOmega))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NoiseCount() != 0 {
		t.Fatalf("ω=1 should have zero noise, got %d", ds.NoiseCount())
	}
}

func TestMixtureDeterministic(t *testing.T) {
	a, _ := Mixture(DefaultMixtureConfig(500, RegimeCap))
	b, _ := Mixture(DefaultMixtureConfig(500, RegimeCap))
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("mixture not deterministic")
			}
		}
	}
}

func TestMixtureSeparation(t *testing.T) {
	// Intra-cluster distances must be much smaller than noise-to-cluster
	// distances, or the whole premise of dominant cluster detection fails.
	ds, err := Mixture(DefaultMixtureConfig(2000, RegimeCap))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var intra, cross float64
	n := 0
	for trial := 0; trial < 300; trial++ {
		i, j := rng.Intn(ds.N()), rng.Intn(ds.N())
		if i == j {
			continue
		}
		d := vec.L2(ds.Points[i], ds.Points[j])
		if ds.Labels[i] >= 0 && ds.Labels[i] == ds.Labels[j] {
			intra += d
			n++
		} else if ds.Labels[i] != ds.Labels[j] {
			cross += d
		}
	}
	if n == 0 {
		t.Skip("no intra pairs sampled")
	}
	if intra/float64(n) > 80 {
		t.Errorf("intra-cluster distances too large: %v", intra/float64(n))
	}
}

func TestMixtureErrors(t *testing.T) {
	if _, err := Mixture(MixtureConfig{N: 10, Clusters: 20, Dim: 5}); err == nil {
		t.Error("tiny N accepted")
	}
	if _, err := Mixture(MixtureConfig{N: 100, Clusters: 0, Dim: 5}); err == nil {
		t.Error("zero clusters accepted")
	}
}

func TestNARTLike(t *testing.T) {
	cfg := DefaultNARTConfig()
	cfg.N = 1200
	cfg.EventDocs = 260
	ds, err := NARTLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 1200 || ds.NumClusters != 13 {
		t.Fatalf("N=%d clusters=%d", ds.N(), ds.NumClusters)
	}
	gt := 0
	for _, s := range ds.ClusterSizes() {
		gt += s
		if s == 0 {
			t.Error("empty event cluster")
		}
	}
	if gt != 260 {
		t.Errorf("ground truth docs = %d, want 260", gt)
	}
	// Topic vectors are L1-normalized probability vectors.
	for i := 0; i < 50; i++ {
		p := ds.Points[i]
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatal("negative topic weight")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("topic vector sums to %v", sum)
		}
	}
}

func TestNDILike(t *testing.T) {
	ds, err := NDILike(SubNDIConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClusters != 6 {
		t.Fatalf("clusters = %d", ds.NumClusters)
	}
	if got := ds.N() - ds.NoiseCount(); got != 1420 {
		t.Errorf("positives = %d, want 1420", got)
	}
	if ds.NoiseCount() != 8520 {
		t.Errorf("noise = %d, want 8520", ds.NoiseCount())
	}
	// Descriptors in [0,1].
	for _, p := range ds.Points[:100] {
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatal("descriptor out of [0,1]")
			}
		}
	}
}

func TestSIFTLike(t *testing.T) {
	ds, err := SIFTLike(DefaultSIFTConfig(4000))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 4000 {
		t.Fatalf("N = %d", ds.N())
	}
	// L2-normalized, non-negative.
	for _, p := range ds.Points[:100] {
		if math.Abs(vec.Norm2(p)-1) > 1e-9 {
			t.Fatalf("norm = %v", vec.Norm2(p))
		}
		for _, v := range p {
			if v < 0 {
				t.Fatal("negative SIFT component")
			}
		}
	}
	if got := float64(ds.N()-ds.NoiseCount()) / float64(ds.N()); math.Abs(got-0.3) > 0.02 {
		t.Errorf("positive fraction = %v, want ≈ 0.3", got)
	}
}

func TestSubset(t *testing.T) {
	ds, _ := Mixture(DefaultMixtureConfig(2000, RegimeCap))
	sub := ds.Subset(500, 9)
	if sub.N() != 500 {
		t.Fatalf("subset N = %d", sub.N())
	}
	if sub.SuggestedK != ds.SuggestedK {
		t.Error("subset lost tuned scales")
	}
	// Subset of full size returns the dataset itself.
	if ds.Subset(5000, 9) != ds {
		t.Error("oversized subset should return original")
	}
}

func TestWithNoiseIncrease(t *testing.T) {
	ds, _ := Mixture(DefaultMixtureConfig(1000, RegimeCap))
	gt := ds.N() - ds.NoiseCount()
	noisy := ds.WithNoise(3, 5)
	if got := noisy.NoiseCount(); got != 3*gt {
		t.Fatalf("noise = %d, want %d", got, 3*gt)
	}
	if math.Abs(noisy.NoiseDegree()-3) > 1e-9 {
		t.Fatalf("NoiseDegree = %v", noisy.NoiseDegree())
	}
	// Original untouched.
	if ds.NoiseCount() == noisy.NoiseCount() {
		t.Error("WithNoise mutated the original")
	}
}

func TestWithNoiseDecrease(t *testing.T) {
	ds, _ := Mixture(DefaultMixtureConfig(2000, RegimeCap)) // 1000 positive, 1000 noise
	gt := ds.N() - ds.NoiseCount()
	reduced := ds.WithNoise(0.5, 5)
	if got := reduced.NoiseCount(); got != gt/2 {
		t.Fatalf("noise = %d, want %d", got, gt/2)
	}
	zero := ds.WithNoise(0, 5)
	if zero.NoiseCount() != 0 {
		t.Fatalf("noise = %d, want 0", zero.NoiseCount())
	}
	// Positives preserved exactly.
	if zero.N()-zero.NoiseCount() != gt {
		t.Error("positives lost")
	}
}

func TestNoiseDegree(t *testing.T) {
	ds := &Dataset{Labels: []int{-1, -1, 0, 1}, NumClusters: 2,
		Points: [][]float64{{0}, {0}, {0}, {0}}}
	if got := ds.NoiseDegree(); got != 1 {
		t.Fatalf("NoiseDegree = %v, want 1", got)
	}
}

func TestRandGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, shape := range []float64{0.3, 1.0, 4.5} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += randGamma(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.08*shape+0.03 {
			t.Errorf("Gamma(%v) sample mean = %v", shape, mean)
		}
	}
}
