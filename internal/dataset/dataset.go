// Package dataset generates the synthetic workloads of the paper's evaluation
// (Section 5) and faithful stand-ins for its proprietary real-world data:
//
//   - Mixture: the Section 5.2 synthetic sets — 20 multivariate Gaussians in
//     100 dimensions with diagonal covariances in [0,10], partially
//     overlapping means, surrounded by uniform noise; per-cluster size a*
//     follows one of the three regimes of Table 1 (ωn, n^η, capped P).
//   - NARTLike: LDA-style 350-dim topic vectors, 13 hot-event clusters buried
//     in diffuse-topic noise documents (stand-in for the crawled news data).
//   - NDILike: GIST-style 256-dim image descriptors with planted
//     near-duplicate clusters (stand-in for the crawled image data).
//   - SIFTLike: 128-dim non-negative L2-normalized descriptors with planted
//     visual-word clusters (stand-in for SIFT-50M).
//
// Every generator is deterministic given its seed and returns ground-truth
// labels (-1 = background noise) plus a suggested kernel scale computed from
// the planted intra-cluster distances, mirroring the per-dataset kernel
// tuning the paper performs.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"alid/internal/vec"
)

// Dataset is a labeled point set.
type Dataset struct {
	// Name identifies the generator and parameters.
	Name string
	// Points holds the feature vectors.
	Points [][]float64
	// Labels holds ground truth: cluster id ≥ 0 or -1 for noise.
	Labels []int
	// NumClusters is the number of planted dominant clusters.
	NumClusters int
	// SuggestedK is a kernel scale making typical intra-cluster affinities
	// ≈ 0.85, so cluster densities clear the paper's 0.75 threshold.
	SuggestedK float64
	// SuggestedLSHR is a segment length under which same-cluster points
	// collide with high probability.
	SuggestedLSHR float64
}

// N returns the dataset size.
func (d *Dataset) N() int { return len(d.Points) }

// ClusterSizes returns the size of every ground-truth cluster.
func (d *Dataset) ClusterSizes() []int {
	sizes := make([]int, d.NumClusters)
	for _, l := range d.Labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}

// NoiseCount returns the number of background-noise points.
func (d *Dataset) NoiseCount() int {
	n := 0
	for _, l := range d.Labels {
		if l < 0 {
			n++
		}
	}
	return n
}

// NoiseDegree returns #noise / #ground-truth, the x-axis of Fig. 11 (Eq. 35).
func (d *Dataset) NoiseDegree() float64 {
	gt := d.N() - d.NoiseCount()
	if gt == 0 {
		return math.Inf(1)
	}
	return float64(d.NoiseCount()) / float64(gt)
}

// Subset returns a stratified random subset of size m preserving the
// cluster/noise proportions, used by the Fig. 7/9 scalability sweeps.
func (d *Dataset) Subset(m int, seed int64) *Dataset {
	if m >= d.N() {
		return d
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(d.N())[:m]
	sort.Ints(perm)
	out := &Dataset{
		Name:          fmt.Sprintf("%s-sub%d", d.Name, m),
		Points:        make([][]float64, m),
		Labels:        make([]int, m),
		NumClusters:   d.NumClusters,
		SuggestedK:    d.SuggestedK,
		SuggestedLSHR: d.SuggestedLSHR,
	}
	for i, p := range perm {
		out.Points[i] = d.Points[p]
		out.Labels[i] = d.Labels[p]
	}
	return out
}

// WithNoise returns a copy of d with extra uniform noise points appended so
// the result has the requested noise degree (#noise/#ground-truth ≥ 0),
// the knob of the Fig. 11 noise-resistance experiments. The noise is drawn
// from the bounding box of the existing points.
func (d *Dataset) WithNoise(noiseDegree float64, seed int64) *Dataset {
	gt := d.N() - d.NoiseCount()
	wantNoise := int(math.Round(noiseDegree * float64(gt)))
	haveNoise := d.NoiseCount()
	out := &Dataset{
		Name:          fmt.Sprintf("%s-nd%.1f", d.Name, noiseDegree),
		Points:        append([][]float64{}, d.Points...),
		Labels:        append([]int{}, d.Labels...),
		NumClusters:   d.NumClusters,
		SuggestedK:    d.SuggestedK,
		SuggestedLSHR: d.SuggestedLSHR,
	}
	if wantNoise <= haveNoise {
		// Remove surplus noise points (keep the first ones deterministically).
		keep := out.Points[:0]
		keepL := out.Labels[:0]
		removed := 0
		toRemove := haveNoise - wantNoise
		for i, l := range d.Labels {
			if l < 0 && removed < toRemove {
				removed++
				continue
			}
			keep = append(keep, d.Points[i])
			keepL = append(keepL, l)
		}
		out.Points, out.Labels = keep, keepL
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	dim := len(d.Points[0])
	lo, hi := boundingBox(d.Points)
	for i := 0; i < wantNoise-haveNoise; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		out.Points = append(out.Points, p)
		out.Labels = append(out.Labels, -1)
	}
	return out
}

func boundingBox(pts [][]float64) (lo, hi []float64) {
	dim := len(pts[0])
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	copy(lo, pts[0])
	copy(hi, pts[0])
	for _, p := range pts {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

// tuneScales fills SuggestedK and SuggestedLSHR from sampled intra-cluster
// distances: k = -ln(0.85)/median intra distance, r = 8× median intra
// distance (wide enough that co-cluster points collide under ~10 concatenated
// projections). The 0.85 target puts planted-cluster densities comfortably
// above the paper's 0.75 selection threshold.
func (d *Dataset) tuneScales(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	byCluster := make(map[int][]int)
	for i, l := range d.Labels {
		if l >= 0 {
			byCluster[l] = append(byCluster[l], i)
		}
	}
	var dists []float64
	for _, members := range byCluster {
		if len(members) < 2 {
			continue
		}
		for t := 0; t < 40; t++ {
			i := members[rng.Intn(len(members))]
			j := members[rng.Intn(len(members))]
			if i != j {
				dists = append(dists, vec.L2(d.Points[i], d.Points[j]))
			}
		}
	}
	if len(dists) == 0 {
		d.SuggestedK = 1
		d.SuggestedLSHR = 1
		return
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med <= 0 {
		med = 1e-9
	}
	d.SuggestedK = -math.Log(0.85) / med
	d.SuggestedLSHR = 8 * med
}
