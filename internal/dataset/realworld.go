package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"alid/internal/vec"
)

// randGamma samples Gamma(shape, 1) with the Marsaglia–Tsang method (for
// shape ≥ 1) and the Ahrens–Dieter boost for shape < 1. Needed for the
// Dirichlet topic vectors of the NART stand-in.
func randGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}
		return randGamma(rng, shape+1) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// randDirichlet samples from Dirichlet(alpha) into dst.
func randDirichlet(rng *rand.Rand, alpha []float64, dst []float64) {
	var sum float64
	for i, a := range alpha {
		dst[i] = randGamma(rng, a)
		sum += dst[i]
	}
	if sum <= 0 {
		sum = 1
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// NARTConfig parameterizes the news-article stand-in. The defaults match the
// paper's NART statistics: 5,301 articles, 350 LDA topics, 13 hot events
// covering 734 articles, the rest diffuse daily-news noise.
type NARTConfig struct {
	N         int
	Dim       int
	Events    int
	EventDocs int
	Seed      int64
}

// DefaultNARTConfig returns the paper-matched sizes.
func DefaultNARTConfig() NARTConfig {
	return NARTConfig{N: 5301, Dim: 350, Events: 13, EventDocs: 734, Seed: 1}
}

// NARTLike generates LDA-style topic vectors: each hot event concentrates on
// a few topics (sharp Dirichlet around an event profile); noise documents mix
// many topics diffusely. Vectors are L1-normalized like LDA posteriors.
func NARTLike(cfg NARTConfig) (*Dataset, error) {
	if cfg.N <= 0 || cfg.Dim <= 0 || cfg.Events <= 0 || cfg.EventDocs > cfg.N {
		return nil, fmt.Errorf("dataset: invalid NART config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Name:        fmt.Sprintf("nart-n%d", cfg.N),
		NumClusters: cfg.Events,
	}
	// Event profiles: a handful of dominant topics each.
	profiles := make([][]float64, cfg.Events)
	for e := range profiles {
		alpha := make([]float64, cfg.Dim)
		for j := range alpha {
			alpha[j] = 0.01
		}
		for t := 0; t < 5; t++ {
			alpha[rng.Intn(cfg.Dim)] = 12
		}
		profiles[e] = alpha
	}
	perEvent := cfg.EventDocs / cfg.Events
	for e := 0; e < cfg.Events; e++ {
		docs := perEvent
		if e < cfg.EventDocs%cfg.Events {
			docs++
		}
		for i := 0; i < docs; i++ {
			p := make([]float64, cfg.Dim)
			randDirichlet(rng, profiles[e], p)
			ds.Points = append(ds.Points, p)
			ds.Labels = append(ds.Labels, e)
		}
	}
	// Diffuse noise documents: unique random topic emphasis per doc.
	noiseAlpha := make([]float64, cfg.Dim)
	for len(ds.Points) < cfg.N {
		for j := range noiseAlpha {
			noiseAlpha[j] = 0.02
		}
		for t := 0; t < 8; t++ {
			noiseAlpha[rng.Intn(cfg.Dim)] = 0.5 + rng.Float64()*3
		}
		p := make([]float64, cfg.Dim)
		randDirichlet(rng, noiseAlpha, p)
		ds.Points = append(ds.Points, p)
		ds.Labels = append(ds.Labels, -1)
	}
	ds.tuneScales(cfg.Seed + 77)
	return ds, nil
}

// NDIConfig parameterizes the near-duplicate-image stand-in: GIST-style
// global texture descriptors. Paper: 109,815 images, 57 clusters, 11,951
// near-duplicates, 97,864 noise. Scale down with the Scale field.
type NDIConfig struct {
	Clusters  int
	Positives int
	Noise     int
	Dim       int
	Seed      int64
}

// DefaultNDIConfig matches the paper's NDI at 1/10 scale by default callers;
// here it returns the full-paper statistics.
func DefaultNDIConfig() NDIConfig {
	return NDIConfig{Clusters: 57, Positives: 11951, Noise: 97864, Dim: 256, Seed: 1}
}

// SubNDIConfig matches the paper's Sub-NDI subset: 6 clusters, 1,420
// ground-truth images, 8,520 noise images.
func SubNDIConfig() NDIConfig {
	return NDIConfig{Clusters: 6, Positives: 1420, Noise: 8520, Dim: 256, Seed: 1}
}

// NDILike generates GIST-style descriptors in [0,1]^dim: each near-duplicate
// cluster perturbs a base descriptor (crop/re-encode jitter); noise images
// are independent random descriptors.
func NDILike(cfg NDIConfig) (*Dataset, error) {
	if cfg.Clusters <= 0 || cfg.Positives < cfg.Clusters || cfg.Dim <= 0 {
		return nil, fmt.Errorf("dataset: invalid NDI config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Name:        fmt.Sprintf("ndi-c%d-p%d-n%d", cfg.Clusters, cfg.Positives, cfg.Noise),
		NumClusters: cfg.Clusters,
	}
	per := cfg.Positives / cfg.Clusters
	for c := 0; c < cfg.Clusters; c++ {
		base := make([]float64, cfg.Dim)
		for j := range base {
			base[j] = rng.Float64()
		}
		docs := per
		if c < cfg.Positives%cfg.Clusters {
			docs++
		}
		for i := 0; i < docs; i++ {
			p := make([]float64, cfg.Dim)
			for j := range p {
				p[j] = clamp01(base[j] + rng.NormFloat64()*0.03)
			}
			ds.Points = append(ds.Points, p)
			ds.Labels = append(ds.Labels, c)
		}
	}
	for i := 0; i < cfg.Noise; i++ {
		p := make([]float64, cfg.Dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		ds.Points = append(ds.Points, p)
		ds.Labels = append(ds.Labels, -1)
	}
	ds.tuneScales(cfg.Seed + 77)
	return ds, nil
}

// SIFTConfig parameterizes the SIFT-50M stand-in: 128-dim non-negative
// L2-normalized local descriptors with planted visual-word clusters.
type SIFTConfig struct {
	N        int
	Clusters int
	// PositiveFrac is the fraction of descriptors belonging to visual words.
	PositiveFrac float64
	Dim          int
	Seed         int64
}

// DefaultSIFTConfig returns a visual-word mix with 30% positives.
func DefaultSIFTConfig(n int) SIFTConfig {
	return SIFTConfig{N: n, Clusters: max(2, n/2000), PositiveFrac: 0.3, Dim: 128, Seed: 1}
}

// SIFTLike generates the descriptor set. Visual-word members are tight
// perturbations of a word centroid; noise descriptors are independent.
func SIFTLike(cfg SIFTConfig) (*Dataset, error) {
	if cfg.N <= 0 || cfg.Clusters <= 0 || cfg.PositiveFrac < 0 || cfg.PositiveFrac > 1 {
		return nil, fmt.Errorf("dataset: invalid SIFT config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Name:        fmt.Sprintf("sift-n%d", cfg.N),
		NumClusters: cfg.Clusters,
	}
	positives := int(float64(cfg.N) * cfg.PositiveFrac)
	per := positives / cfg.Clusters
	sample := func(base []float64, jitter float64) []float64 {
		p := make([]float64, cfg.Dim)
		for j := range p {
			v := rng.ExpFloat64() * 0.5
			if base != nil {
				v = base[j] + rng.NormFloat64()*jitter
			}
			if v < 0 {
				v = 0
			}
			p[j] = v
		}
		vec.NormalizeL2(p)
		return p
	}
	for c := 0; c < cfg.Clusters; c++ {
		base := sample(nil, 0)
		docs := per
		if c < positives%cfg.Clusters {
			docs++
		}
		for i := 0; i < docs; i++ {
			ds.Points = append(ds.Points, sample(base, 0.02))
			ds.Labels = append(ds.Labels, c)
		}
	}
	for len(ds.Points) < cfg.N {
		ds.Points = append(ds.Points, sample(nil, 0))
		ds.Labels = append(ds.Labels, -1)
	}
	ds.tuneScales(cfg.Seed + 77)
	return ds, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
