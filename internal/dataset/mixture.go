package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Regime selects how the per-cluster ground-truth size a* scales with the
// total dataset size n, the three typical cases of Table 1.
type Regime int

const (
	// RegimeOmega: a* = ω·n/20 — clean source, positives in constant
	// proportion of the data (ω = 1 means no noise at all).
	RegimeOmega Regime = iota
	// RegimeEta: a* = n^η/20 — noisy source where noise grows faster than
	// the positives.
	RegimeEta
	// RegimeCap: a* = P/20 — size-limited dominant clusters (Dunbar-style
	// constant bound).
	RegimeCap
)

func (r Regime) String() string {
	switch r {
	case RegimeOmega:
		return "omega"
	case RegimeEta:
		return "eta"
	case RegimeCap:
		return "cap"
	}
	return fmt.Sprintf("Regime(%d)", int(r))
}

// MixtureConfig parameterizes the Section 5.2 synthetic generator.
type MixtureConfig struct {
	// N is the total number of points.
	N int
	// Dim is the feature dimension (paper: 100).
	Dim int
	// Clusters is the number of Gaussian components (paper: 20).
	Clusters int
	// Regime selects the a* scaling law.
	Regime Regime
	// Omega is ω for RegimeOmega (paper: 1.0).
	Omega float64
	// Eta is η for RegimeEta (paper: 0.9).
	Eta float64
	// P is the per-dataset cap for RegimeCap (paper: P = 1000, so each of
	// the 20 clusters holds P/20 = 50 points).
	P int
	// OverlapPairs forces this many cluster-mean pairs close together to
	// simulate the paper's partially overlapping clusters.
	OverlapPairs int
	// Seed drives all randomness.
	Seed int64
}

// DefaultMixtureConfig mirrors the paper's setup.
func DefaultMixtureConfig(n int, regime Regime) MixtureConfig {
	return MixtureConfig{
		N:            n,
		Dim:          100,
		Clusters:     20,
		Regime:       regime,
		Omega:        1.0,
		Eta:          0.9,
		P:            1000,
		OverlapPairs: 3,
		Seed:         1,
	}
}

// ClusterSize returns a*, the per-cluster ground-truth size implied by the
// configuration (Section 5.2: a* = ωn/20, n^η/20 or P/20).
func (c MixtureConfig) ClusterSize() int {
	var a float64
	switch c.Regime {
	case RegimeOmega:
		a = c.Omega * float64(c.N) / float64(c.Clusters)
	case RegimeEta:
		a = math.Pow(float64(c.N), c.Eta) / float64(c.Clusters)
	case RegimeCap:
		a = float64(c.P) / float64(c.Clusters)
	}
	size := int(a)
	if size < 2 {
		size = 2
	}
	if size*c.Clusters > c.N {
		size = c.N / c.Clusters
	}
	return size
}

// Mixture generates the synthetic Gaussian-mixture-plus-uniform-noise data of
// Section 5.2.
func Mixture(cfg MixtureConfig) (*Dataset, error) {
	if cfg.N < cfg.Clusters*2 {
		return nil, fmt.Errorf("dataset: N=%d too small for %d clusters", cfg.N, cfg.Clusters)
	}
	if cfg.Dim <= 0 || cfg.Clusters <= 0 {
		return nil, fmt.Errorf("dataset: invalid mixture config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	aStar := cfg.ClusterSize()
	nNoise := cfg.N - aStar*cfg.Clusters

	// Cluster means spread over [0, side]^dim with a few pairs forced close
	// ("partially overlapped ... mean vectors close to each other").
	side := 100.0
	means := make([][]float64, cfg.Clusters)
	for c := range means {
		m := make([]float64, cfg.Dim)
		for j := range m {
			m[j] = rng.Float64() * side
		}
		means[c] = m
	}
	for p := 0; p < cfg.OverlapPairs && 2*p+1 < cfg.Clusters; p++ {
		a, b := means[2*p], means[2*p+1]
		for j := range b {
			b[j] = a[j] + rng.NormFloat64()*3
		}
	}
	// Diagonal covariances with elements in [0, 10] (i.e. per-axis variance).
	stds := make([][]float64, cfg.Clusters)
	for c := range stds {
		s := make([]float64, cfg.Dim)
		for j := range s {
			s[j] = math.Sqrt(rng.Float64() * 10)
		}
		stds[c] = s
	}

	ds := &Dataset{
		Name:        fmt.Sprintf("mixture-%s-n%d", cfg.Regime, cfg.N),
		Points:      make([][]float64, 0, cfg.N),
		Labels:      make([]int, 0, cfg.N),
		NumClusters: cfg.Clusters,
	}
	for c := 0; c < cfg.Clusters; c++ {
		for i := 0; i < aStar; i++ {
			p := make([]float64, cfg.Dim)
			for j := range p {
				p[j] = means[c][j] + rng.NormFloat64()*stds[c][j]
			}
			ds.Points = append(ds.Points, p)
			ds.Labels = append(ds.Labels, c)
		}
	}
	// Uniform background noise over an enlarged bounding box of the clusters.
	for i := 0; i < nNoise; i++ {
		p := make([]float64, cfg.Dim)
		for j := range p {
			p[j] = -10 + rng.Float64()*(side+20)
		}
		ds.Points = append(ds.Points, p)
		ds.Labels = append(ds.Labels, -1)
	}
	ds.tuneScales(cfg.Seed + 77)
	return ds, nil
}
