// Package core implements ALID itself (Section 4, Algorithm 2): the
// iteration LID → ROI → CIVS over a lazily materialized local affinity graph,
// plus the peeling driver that extracts every dominant cluster.
package core

import (
	"math"

	"alid/internal/affinity"
	"alid/internal/matrix"
	"alid/internal/vec"
)

// ROI is the double-deck hyperball H(D, R_in, R_out) of Section 4.2 together
// with the interpolated search radius R of Eq. 16.
type ROI struct {
	// D is the ball center, the weighted centroid Σ x̂_i·v_i.
	D []float64
	// Rin is the inner radius: every point strictly inside is guaranteed
	// infective against x̂ (Proposition 1, property 1).
	Rin float64
	// Rout is the outer radius: every point strictly outside is guaranteed
	// non-infective (Proposition 1, property 2).
	Rout float64
	// R is the search radius actually used at this iteration,
	// R = Rin + θ(c)(Rout − Rin).
	R float64
}

// thetaGrowth is the shifted logistic schedule θ(c) = 1/(1+e^{4−c/2}) that
// moves the ROI surface from the inner to the outer ball as the outer
// iteration count c grows (Eq. 16).
func thetaGrowth(c int) float64 {
	return 1 / (1 + math.Exp(4-float64(c)/2))
}

// EstimateROI computes the ROI from a local dense subgraph given by parallel
// slices of support indices and weights, its density pi, and the current
// outer iteration c (1-based).
//
// Degenerate subgraphs (singleton support or pi ≤ 0) have an unbounded outer
// ball — every vertex with positive affinity is infective against a
// zero-density subgraph — so R is +Inf and the caller's δ-nearest cap is the
// only limit, mirroring the paper's treatment of the first iteration.
func EstimateROI(m *matrix.Matrix, support []int, weights []float64, pi float64, k affinity.Kernel, c int) ROI {
	d := m.WeightedCentroid(support, weights)
	roi := ROI{D: d}
	if pi <= 0 || len(support) < 2 {
		roi.Rin = math.Inf(1)
		roi.Rout = math.Inf(1)
		roi.R = math.Inf(1)
		return roi
	}
	euclid := k.P == 2
	var centerNormSq float64
	if euclid {
		centerNormSq = vec.Dot(d, d)
	}
	var lambdaIn, lambdaOut float64
	for t, i := range support {
		var dist float64
		if euclid {
			dist = math.Sqrt(m.DistSq(i, d, centerNormSq))
		} else {
			dist = k.Distance(m.Row(i), d)
		}
		lambdaIn += weights[t] * math.Exp(-k.K*dist)
		lambdaOut += weights[t] * math.Exp(k.K*dist)
	}
	roi.Rin = math.Log(lambdaIn/pi) / k.K
	roi.Rout = math.Log(lambdaOut/pi) / k.K
	if roi.Rin < 0 {
		roi.Rin = 0
	}
	if roi.Rout < roi.Rin {
		roi.Rout = roi.Rin
	}
	roi.R = roi.Rin + thetaGrowth(c)*(roi.Rout-roi.Rin)
	return roi
}

// Contains reports whether point v lies within the current search radius.
func (r ROI) Contains(v []float64, k affinity.Kernel) bool {
	if math.IsInf(r.R, 1) {
		return true
	}
	return k.Distance(v, r.D) <= r.R
}
