package core

import (
	"context"
	"math/rand"
	"testing"

	"alid/internal/par"
)

// DetectAll with the intra-detection pool must be bit-identical to the
// serial run — clusters, members, weights, densities, instrumentation
// ordering — at any worker count. civsParMin is lowered so the parallel
// candidate filter engages on this small fixture (the lid-level scans have
// their own forced crosscheck in internal/lid).
func TestDetectAllCrosscheckSerialVsPool(t *testing.T) {
	defer func(old int) { civsParMin = old }(civsParMin)
	civsParMin = 8

	rng := rand.New(rand.NewSource(47))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {14, 0}, {0, 14}}, 40, 0.35, 50)
	base := testConfig()

	run := func(pool *par.Pool) []*Cluster {
		cfg := base
		cfg.Pool = pool
		det, err := NewDetector(pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cls, err := det.DetectAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return cls
	}

	serial := run(nil)
	if len(serial) == 0 {
		t.Fatal("no clusters detected — crosscheck is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(par.New(workers))
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d clusters, serial %d", workers, len(got), len(serial))
		}
		for i := range serial {
			s, g := serial[i], got[i]
			if g.Density != s.Density || g.Seed != s.Seed ||
				g.OuterIterations != s.OuterIterations || g.LIDIterations != s.LIDIterations {
				t.Fatalf("workers=%d cluster %d: got %+v, serial %+v", workers, i, g, s)
			}
			if len(g.Members) != len(s.Members) {
				t.Fatalf("workers=%d cluster %d: size %d, serial %d", workers, i, len(g.Members), len(s.Members))
			}
			for j := range s.Members {
				if g.Members[j] != s.Members[j] || g.Weights[j] != s.Weights[j] {
					t.Fatalf("workers=%d cluster %d member %d: (%d,%v), serial (%d,%v)",
						workers, i, j, g.Members[j], g.Weights[j], s.Members[j], s.Weights[j])
				}
			}
		}
	}
}
