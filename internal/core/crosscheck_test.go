package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"alid/internal/affinity"
	"alid/internal/baselines/iid"
)

// ALID is an approximation of IID: on data where LSH recall is essentially
// perfect, the two must find the same dominant clusters — same densities,
// overwhelmingly the same members. This is the central correctness claim of
// the paper (ALID trades none of IID's quality for its scalability).
func TestALIDMatchesIIDOnWellSeparatedData(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {14, 0}, {0, 14}}, 30, 0.3, 15)

	cfg := testConfig()
	det, err := NewDetector(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alidClusters, err := det.DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	o, err := affinity.NewOracle(pts, cfg.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	iidCfg := iid.DefaultConfig()
	iidCfg.DensityThreshold = cfg.DensityThreshold
	iidClusters, err := iid.New(o, iidCfg).DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(alidClusters) == 0 || len(iidClusters) == 0 {
		t.Fatalf("no clusters: alid=%d iid=%d", len(alidClusters), len(iidClusters))
	}

	// The top (densest) clusters must coincide.
	a, b := alidClusters[0], iidClusters[0]
	if math.Abs(a.Density-b.Density) > 0.02 {
		t.Errorf("top densities diverge: ALID %v vs IID %v", a.Density, b.Density)
	}
	overlap := memberOverlap(a.Members, b.Members)
	if overlap < 0.8 {
		t.Errorf("top cluster member overlap = %.2f, want ≥ 0.8", overlap)
	}
	// Every dense IID cluster has an ALID counterpart with close density.
	for _, ic := range iidClusters {
		best := 0.0
		for _, ac := range alidClusters {
			if o := memberOverlap(ic.Members, ac.Members); o > best {
				best = o
			}
		}
		if best < 0.6 {
			t.Errorf("IID cluster (size %d, π=%.3f) unmatched by ALID (best overlap %.2f)",
				ic.Size(), ic.Density, best)
		}
	}
}

func memberOverlap(a, b []int) float64 {
	in := make(map[int]bool, len(a))
	for _, m := range a {
		in[m] = true
	}
	both := 0
	for _, m := range b {
		if in[m] {
			both++
		}
	}
	smaller := len(a)
	if len(b) < smaller {
		smaller = len(b)
	}
	if smaller == 0 {
		return 0
	}
	return float64(both) / float64(smaller)
}
