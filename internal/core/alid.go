package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"alid/internal/affinity"
	"alid/internal/index"
	"alid/internal/lid"
	"alid/internal/lsh"
	"alid/internal/matrix"
	"alid/internal/minhash"
	"alid/internal/par"
	"alid/internal/vec"
)

// Config collects every knob of Algorithm 2. Zero values are replaced by the
// paper's defaults where one exists.
type Config struct {
	// Kernel is the affinity kernel of Eq. 1.
	Kernel affinity.Kernel
	// Backend selects the candidate-index implementation behind the CIVS
	// stage: index.BackendLSH (dense p-stable hashing, the default when
	// empty) or index.BackendMinHash (banded MinHash over set signatures).
	Backend string
	// LSH configures the CIVS index for the dense backend.
	LSH lsh.Config
	// MinHash configures the set backend when Backend is "minhash".
	MinHash minhash.Config
	// Delta is δ, the maximum number of candidate vertices CIVS may return
	// per outer iteration. The paper fixes δ = 800.
	Delta int
	// MaxOuter is C, the maximum number of ALID iterations (paper: 10).
	MaxOuter int
	// MaxLID is T, the LID iteration budget per inner solve.
	MaxLID int
	// Tol is the payoff tolerance that declares a subgraph immune.
	Tol float64
	// FirstRadius is the ROI radius for the first iteration, where
	// A_{βα}x_α = 0 makes Eq. 15 unusable. The paper uses 0.4 on normalized
	// features; non-positive means unbounded (δ-nearest only).
	FirstRadius float64
	// DensityThreshold selects which peeled subgraphs count as dominant
	// clusters (paper: π(x) ≥ 0.75).
	DensityThreshold float64
	// MinClusterSize drops smaller supports from the reported clusters (they
	// are still peeled). Defaults to 2: a singleton has π = 0 and can never
	// pass a positive density threshold anyway.
	MinClusterSize int

	// Pool is the deterministic intra-detection parallel layer: when set,
	// the hot loops inside one DetectFrom — CIVS candidate scoring, A_{βα}
	// submatrix fills, LID payoff/immunity scans — fan out over its workers.
	// Results are bit-identical to the serial path at any worker count and
	// any GOMAXPROCS (see package par); nil keeps every loop serial. The
	// Detector itself remains single-caller: the fan-out lives entirely
	// inside each call. One pool may be shared by many detectors (PALID
	// executors, the streaming commit path).
	Pool *par.Pool

	// SingleQueryCIVS is an ablation switch: query LSH only from the
	// heaviest support point instead of all of them, reproducing the
	// single-LSR failure mode of Fig. 4(a).
	SingleQueryCIVS bool
	// FixedROIGrowth is an ablation switch: use R = R_out from the first
	// iteration instead of the θ(c) logistic schedule of Eq. 16.
	FixedROIGrowth bool
}

// DefaultConfig returns the paper's experiment configuration.
func DefaultConfig() Config {
	return Config{
		Kernel:           affinity.DefaultKernel(),
		LSH:              lsh.DefaultConfig(),
		Delta:            800,
		MaxOuter:         10,
		MaxLID:           2000,
		Tol:              lid.DefaultTolerance,
		FirstRadius:      0, // unbounded; paper's 0.4 assumes normalized features
		DensityThreshold: 0.75,
		MinClusterSize:   2,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Kernel == (affinity.Kernel{}) {
		c.Kernel = d.Kernel
	}
	if c.LSH == (lsh.Config{}) {
		c.LSH = d.LSH
	}
	if index.Normalize(c.Backend) == index.BackendMinHash && c.MinHash == (minhash.Config{}) {
		c.MinHash = minhash.DefaultConfig()
	}
	if c.Delta <= 0 {
		c.Delta = d.Delta
	}
	if c.MaxOuter <= 0 {
		c.MaxOuter = d.MaxOuter
	}
	if c.MaxLID <= 0 {
		c.MaxLID = d.MaxLID
	}
	if c.Tol <= 0 {
		c.Tol = d.Tol
	}
	if c.DensityThreshold <= 0 {
		// A zero-value Config must not report every peeled subgraph: the
		// documented default is the paper's π(x) ≥ 0.75, the same way every
		// other zero knob takes its paper value. Callers that genuinely want
		// all subgraphs reported set an explicit tiny positive threshold.
		c.DensityThreshold = d.DensityThreshold
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = d.MinClusterSize
	}
	return c
}

// Cluster is one detected dominant cluster: the support of a (approximately)
// global dense subgraph together with its probabilistic memberships and
// density π(x).
type Cluster struct {
	// Members are the global indices with positive weight, ascending.
	Members []int
	// Weights are the simplex weights parallel to Members.
	Weights []float64
	// Density is π(x) of the converged subgraph.
	Density float64
	// Seed is the initial vertex Algorithm 2 started from.
	Seed int
	// OuterIterations is the number of ALID iterations c used.
	OuterIterations int
	// LIDIterations is the total number of LID steps across all solves.
	LIDIterations int
	// PeakEntries is the largest cached A_{βα} submatrix, in entries.
	PeakEntries int
}

// Size returns the number of member vertices.
func (c *Cluster) Size() int { return len(c.Members) }

// Detector runs ALID over a fixed dataset. It is NOT safe for concurrent use;
// PALID creates one Detector per executor.
type Detector struct {
	cfg    Config
	oracle *affinity.Oracle
	index  index.Index

	// scratch for CIVS candidate deduplication and selection (steady-state
	// CIVS calls allocate only the returned ψ slice)
	mark  []uint32
	gen   uint32
	raw   []int32
	cand  []civsCand
	parts [][]civsCand // per-chunk buffers of the parallel CIVS filter

	// instrumentation
	peakEntries int
}

// NewDetector flattens the dataset once (the [][]float64 → matrix.Matrix
// conversion at the API boundary) and delegates to NewDetectorMatrix.
func NewDetector(pts [][]float64, cfg Config) (*Detector, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	m, err := matrix.FromRows(pts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return NewDetectorMatrix(m, cfg)
}

// BuildIndex builds the configured candidate index over a committed matrix:
// the dense p-stable LSH tables or, for the minhash backend, banded bucket
// tables over the matrix's signature rows. Everything downstream works
// through the returned interface and never names the concrete backend.
func BuildIndex(m *matrix.Matrix, cfg Config) (index.Index, error) {
	switch index.Normalize(cfg.Backend) {
	case index.BackendMinHash:
		return minhash.BuildMatrix(m, cfg.MinHash)
	case index.BackendLSH:
		return lsh.BuildMatrix(m, cfg.LSH)
	default:
		return nil, fmt.Errorf("core: unknown index backend %q", cfg.Backend)
	}
}

// NewDetectorMatrix validates the configuration, wraps the flat dataset and
// builds the candidate index (O(n·d·µ·l), the only global pass ALID makes
// over the data). The matrix is captured by reference and must not be mutated.
func NewDetectorMatrix(m *matrix.Matrix, cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	o, err := affinity.NewOracleMatrix(m, cfg.Kernel)
	if err != nil {
		return nil, err
	}
	idx, err := BuildIndex(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Detector{
		cfg:    cfg,
		oracle: o,
		index:  idx,
		mark:   make([]uint32, m.N),
	}, nil
}

// NewDetectorWithIndex flattens the dataset and reuses a prebuilt index.
func NewDetectorWithIndex(pts [][]float64, cfg Config, idx index.Index) (*Detector, error) {
	m, err := matrix.FromRows(pts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return NewDetectorMatrixWithIndex(m, cfg, idx)
}

// NewDetectorMatrixWithIndex reuses a prebuilt index (PALID executors share
// one). The index must have been built over the same points.
func NewDetectorMatrixWithIndex(m *matrix.Matrix, cfg Config, idx index.Index) (*Detector, error) {
	cfg = cfg.withDefaults()
	o, err := affinity.NewOracleMatrix(m, cfg.Kernel)
	if err != nil {
		return nil, err
	}
	if idx.N() != m.N {
		return nil, fmt.Errorf("core: index over %d points, dataset has %d", idx.N(), m.N)
	}
	return &Detector{cfg: cfg, oracle: o, index: idx, mark: make([]uint32, m.N)}, nil
}

// Oracle exposes the instrumented affinity oracle (for experiments).
func (d *Detector) Oracle() *affinity.Oracle { return d.oracle }

// Grow extends the CIVS dedup scratch after the detector's matrix and index
// grew (both are captured by reference and only ever grow in place). The
// streaming layer reuses one detector across commits and calls this instead
// of reconstructing, avoiding an O(n) scratch allocation per commit.
func (d *Detector) Grow() {
	if n := d.oracle.N(); len(d.mark) < n {
		d.mark = append(d.mark, make([]uint32, n-len(d.mark))...)
	}
}

// Index exposes the candidate index (PALID samples seeds from its buckets).
func (d *Detector) Index() index.Index { return d.index }

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// PeakEntries returns the largest cached submatrix observed across all
// DetectFrom calls — the measured counterpart of the O(a*(a*+δ)) space bound.
func (d *Detector) PeakEntries() int { return d.peakEntries }

// DetectFrom runs Algorithm 2 from the given seed vertex. active, when
// non-nil, restricts the search to unpeeled vertices (active[i] == true);
// the seed itself must be active.
func (d *Detector) DetectFrom(ctx context.Context, seed int, active []bool) (*Cluster, error) {
	if active != nil && !active[seed] {
		return nil, fmt.Errorf("core: seed %d is not active", seed)
	}
	st, err := lid.NewState(d.oracle, seed)
	if err != nil {
		return nil, err
	}
	st.SetPool(d.cfg.Pool)
	lidIters := 0
	outer := 0
	for c := 1; c <= d.cfg.MaxOuter; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		outer = c
		// Step 1: local dense subgraph within β. Solve polls ctx itself
		// (amortized) so even a MaxLID-sized inner budget stays interruptible.
		n, err := st.Solve(ctx, d.cfg.MaxLID, d.cfg.Tol)
		lidIters += n
		if err != nil {
			return nil, err
		}

		// Step 2: ROI from x̂.
		sup, w := st.SupportWeights()
		roi := EstimateROI(d.oracle.Mat, sup, w, st.Density(), d.cfg.Kernel, c)
		if d.cfg.FixedROIGrowth {
			roi.R = roi.Rout
		}
		if c == 1 && d.cfg.FirstRadius > 0 {
			roi.R = d.cfg.FirstRadius
		}

		// Step 3: CIVS retrieval of candidate infective vertices.
		psi := d.civs(st, sup, roi, active)
		if len(psi) == 0 {
			break // nothing new inside the ROI: x̂ is globally immune
		}
		// If every retrieved candidate is non-infective, x̂ is a global dense
		// subgraph up to the LSH approximation (Theorem 1).
		if st.Immune(psi, d.cfg.Tol) {
			break
		}
		st.Extend(psi)
	}
	// Final inner solve in case the loop exited by the iteration cap right
	// after an Extend.
	n, err := st.Solve(ctx, d.cfg.MaxLID, d.cfg.Tol)
	lidIters += n
	if err != nil {
		return nil, err
	}

	members, weights := st.SupportWeights()
	orderMembers(members, weights)
	if st.PeakEntries() > d.peakEntries {
		d.peakEntries = st.PeakEntries()
	}
	return &Cluster{
		Members:         members,
		Weights:         weights,
		Density:         st.Density(),
		Seed:            seed,
		OuterIterations: outer,
		LIDIterations:   lidIters,
		PeakEntries:     st.PeakEntries(),
	}, nil
}

// civsGrain is the raw-candidate chunk size of the parallel CIVS filter.
const civsGrain = 512

// civsParMin is the minimum LSH-union size before the filter fans out (per-
// candidate work is one fused distance — cheap — so small unions stay
// serial). A variable only so crosscheck tests can force the parallel path
// on small fixtures; the gate affects speed, never results.
var civsParMin = 2048

// SetCIVSGateForTest overrides civsParMin (crosscheck tests engage the
// parallel candidate filter on small fixtures with it) and returns a
// restore function. Test-only.
func SetCIVSGateForTest(n int) func() {
	old := civsParMin
	civsParMin = n
	return func() { civsParMin = old }
}

// civsCand is a CIVS candidate with its distance to the ROI ball center
// (squared distance for p = 2 — the ranking is identical and the per-
// candidate square root is skipped).
type civsCand struct {
	id   int32
	dist float64
}

// civs implements Step 3: multi-query LSH retrieval from every support point
// (Fig. 4(b)), filtered to the ROI, capped at the δ vertices nearest to D.
// For p = 2 candidates are filtered by comparing fused squared distances
// against R², and the δ-nearest cap uses an O(len) partial selection instead
// of a full sort.
func (d *Detector) civs(st *lid.State, support []int, roi ROI, active []bool) []int {
	d.gen++
	if d.gen == 0 { // uint32 wrap: reset scratch
		for i := range d.mark {
			d.mark[i] = 0
		}
		d.gen = 1
	}
	queries := support
	if d.cfg.SingleQueryCIVS && len(support) > 1 {
		// Ablation: a single locality-sensitive region (Fig. 4(a)). Use the
		// heaviest support point as the lone query.
		best, bestW := support[0], -1.0
		for _, id := range support {
			if w := st.Weight(id); w > bestW {
				best, bestW = id, w
			}
		}
		queries = []int{best}
	}
	raw := d.raw[:0]
	for _, id := range queries {
		raw = d.index.CandidatesByIDInto(id, raw, d.mark, d.gen)
	}
	d.raw = raw

	m := d.oracle.Mat
	euclid := d.cfg.Kernel.P == 2
	bounded := !math.IsInf(roi.R, 1)
	var centerNormSq, r2 float64
	if euclid {
		centerNormSq = vec.Dot(roi.D, roi.D)
		r2 = roi.R * roi.R
	}
	// filter appends the surviving candidates of one raw-id range to buf in
	// range order. It only reads shared state (the matrix, the ROI, the LID
	// state's membership map, the active mask), so disjoint ranges can run
	// concurrently.
	filter := func(ids []int32, buf []civsCand) []civsCand {
		for _, id := range ids {
			if active != nil && !active[id] {
				continue
			}
			if st.Contains(int(id)) {
				continue // already in the local range
			}
			var dist float64
			if euclid {
				dist = m.DistSq(int(id), roi.D, centerNormSq)
				if bounded && dist > r2 {
					continue
				}
			} else {
				dist = d.cfg.Kernel.Distance(m.Row(int(id)), roi.D)
				if bounded && dist > roi.R {
					continue
				}
			}
			buf = append(buf, civsCand{id, dist})
		}
		return buf
	}
	// The parallel path splits raw into fixed chunks, filters each into its
	// own buffer, and concatenates the buffers in ascending chunk order —
	// the exact sequence the serial filter produces, whatever the worker
	// count or GOMAXPROCS.
	var cands []civsCand
	if d.cfg.Pool.Parallel() && len(raw) >= civsParMin {
		chunks := par.NumChunks(len(raw), civsGrain)
		for len(d.parts) < chunks {
			d.parts = append(d.parts, nil)
		}
		parts := d.parts[:chunks]
		d.cfg.Pool.ForChunks(len(raw), civsGrain, func(c, lo, hi int) {
			parts[c] = filter(raw[lo:hi], parts[c][:0])
		})
		cands = d.cand[:0]
		for _, p := range parts {
			cands = append(cands, p...)
		}
	} else {
		cands = filter(raw, d.cand[:0])
	}
	d.cand = cands
	// Keep the δ candidates nearest to the ball center: O(len) quickselect
	// partition, then order just the kept δ (ties broken by id, so the
	// result is deterministic whatever the partition order).
	if len(cands) > d.cfg.Delta {
		selectNearest(cands, d.cfg.Delta)
		cands = cands[:d.cfg.Delta]
		sort.Slice(cands, func(i, j int) bool { return candLess(cands[i], cands[j]) })
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = int(c.id)
	}
	return out
}

func candLess(a, b civsCand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

// selectNearest partially orders c so that c[:k] holds the k smallest
// elements under candLess: iterative quickselect with median-of-three
// pivoting, O(len(c)) expected time, no allocation.
func selectNearest(c []civsCand, k int) {
	lo, hi := 0, len(c)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		// Median-of-three: sort c[lo], c[mid], c[hi] in place.
		if candLess(c[mid], c[lo]) {
			c[mid], c[lo] = c[lo], c[mid]
		}
		if candLess(c[hi], c[mid]) {
			c[hi], c[mid] = c[mid], c[hi]
			if candLess(c[mid], c[lo]) {
				c[mid], c[lo] = c[lo], c[mid]
			}
		}
		if hi-lo < 3 {
			return
		}
		pivot := c[mid]
		// Lomuto partition over c[lo+1:hi] with the pivot parked at mid.
		c[mid], c[hi-1] = c[hi-1], c[mid]
		p := lo + 1
		for i := lo + 1; i < hi-1; i++ {
			if candLess(c[i], pivot) {
				c[i], c[p] = c[p], c[i]
				p++
			}
		}
		c[hi-1], c[p] = c[p], c[hi-1]
		switch {
		case p == k || p == k-1:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

// DetectAll runs the peeling scheme of Section 4.4: detect a cluster, peel
// its support off, and reiterate on the remaining vertices until everything
// is peeled. Subgraphs passing the density threshold and minimum size are
// returned, ordered by decreasing density.
func (d *Detector) DetectAll(ctx context.Context) ([]*Cluster, error) {
	n := d.oracle.N()
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	var clusters []*Cluster
	for seed := 0; seed < n; seed++ {
		if !active[seed] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return clusters, err
		}
		cl, err := d.DetectFrom(ctx, seed, active)
		if err != nil {
			return clusters, err
		}
		for _, m := range cl.Members {
			active[m] = false
		}
		active[seed] = false // defensive: seed is always consumed
		if cl.Density >= d.cfg.DensityThreshold && cl.Size() >= d.cfg.MinClusterSize {
			clusters = append(clusters, cl)
		}
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Density > clusters[j].Density })
	return clusters, nil
}

// Labels converts a cluster list to a per-point assignment: label[i] is the
// index into clusters of the cluster containing i, or -1 for noise. When
// clusters overlap (PALID), the densest wins, matching Algorithm 3's reducer.
func Labels(n int, clusters []*Cluster) []int {
	label := make([]int, n)
	best := make([]float64, n)
	for i := range label {
		label[i] = -1
		best[i] = math.Inf(-1)
	}
	for ci, cl := range clusters {
		for _, m := range cl.Members {
			if cl.Density > best[m] {
				best[m] = cl.Density
				label[m] = ci
			}
		}
	}
	return label
}

func orderMembers(members []int, weights []float64) {
	idx := make([]int, len(members))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return members[idx[a]] < members[idx[b]] })
	m2 := make([]int, len(members))
	w2 := make([]float64, len(weights))
	for i, p := range idx {
		m2[i] = members[p]
		w2[i] = weights[p]
	}
	copy(members, m2)
	copy(weights, w2)
}
