package core

import (
	"context"
	"math/rand"
	"testing"

	"alid/internal/lsh"
)

// Failure injection: an LSH configuration so selective that CIVS retrieves
// nothing. Detection must still terminate (every seed converges to a
// singleton or tiny local subgraph) instead of hanging or erroring.
func TestDetectionSurvivesBlindLSH(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {10, 10}}, 20, 0.3, 10)
	cfg := testConfig()
	cfg.LSH = lsh.Config{Projections: 64, Tables: 1, R: 1e-6, Seed: 1} // nothing collides
	det, err := NewDetector(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := det.DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// With no retrieval there is no way to grow past the seed.
	if len(clusters) != 0 {
		t.Fatalf("blind LSH produced %d clusters", len(clusters))
	}
}

// The single-query ablation (Fig. 4(a)) must still converge and produce
// valid clusters — the paper's claim is reduced coverage, not breakage.
func TestSingleQueryCIVSAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, labels := blobs(rng, [][]float64{{0, 0}, {12, 12}}, 30, 0.3, 20)
	cfg := testConfig()
	cfg.SingleQueryCIVS = true
	det, err := NewDetector(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := det.DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range clusters {
		lbl := labels[cl.Members[0]]
		for _, m := range cl.Members {
			if labels[m] != lbl {
				t.Fatalf("single-query ablation produced impure cluster")
			}
		}
	}
}

// The fixed-ROI ablation must also converge; it trades early-iteration
// candidate volume for the θ(c) schedule.
func TestFixedROIGrowthAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {12, 12}}, 30, 0.3, 20)
	cfg := testConfig()
	cfg.FixedROIGrowth = true
	det, err := NewDetector(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := det.DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("fixed-ROI ablation detected nothing")
	}
}

// A tiny δ must bound the growth per iteration but never break detection.
func TestTinyDeltaStillDetects(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := blobs(rng, [][]float64{{0, 0}}, 40, 0.3, 10)
	cfg := testConfig()
	cfg.Delta = 5
	det, err := NewDetector(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := det.DetectFrom(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() < 5 {
		t.Fatalf("δ=5 cluster size = %d", cl.Size())
	}
}

// FirstRadius smaller than any pairwise distance blocks the first CIVS round
// completely; the ROI of later iterations must not resurrect it (paper
// initializes c=1 specially). Everything collapses to singletons.
func TestPathologicalFirstRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := blobs(rng, [][]float64{{0, 0}}, 15, 0.3, 0)
	cfg := testConfig()
	cfg.FirstRadius = 1e-12
	det, err := NewDetector(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := det.DetectFrom(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 1 {
		t.Fatalf("first-radius block should leave a singleton, got %d", cl.Size())
	}
}

// All points identical: distances are zero, affinities are 1, the ROI is a
// point, and the whole set is one clique — a classic numerical edge case.
func TestAllIdenticalPoints(t *testing.T) {
	pts := make([][]float64, 12)
	for i := range pts {
		pts[i] = []float64{3, 4}
	}
	cfg := testConfig()
	det, err := NewDetector(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := det.DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("identical points gave %d clusters", len(clusters))
	}
	if clusters[0].Size() != 12 {
		t.Fatalf("clique size = %d, want 12", clusters[0].Size())
	}
	// Clique of identical points: π = (m-1)/m.
	want := 11.0 / 12
	if d := clusters[0].Density; d < want-1e-6 || d > want+1e-6 {
		t.Fatalf("density = %v, want %v", d, want)
	}
}
