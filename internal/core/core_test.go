package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"alid/internal/affinity"
	"alid/internal/lid"
	"alid/internal/lsh"
	"alid/internal/matrix"
)

// blobs generates nPerBlob points around each of the given centers with the
// given spread, followed by nNoise uniform noise points over the bounding box.
// Returns points and ground-truth labels (-1 for noise).
func blobs(rng *rand.Rand, centers [][]float64, nPerBlob int, spread float64, nNoise float64) ([][]float64, []int) {
	var pts [][]float64
	var labels []int
	dim := len(centers[0])
	lo, hi := math.Inf(1), math.Inf(-1)
	for c, ctr := range centers {
		for i := 0; i < nPerBlob; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = ctr[j] + rng.NormFloat64()*spread
				if p[j] < lo {
					lo = p[j]
				}
				if p[j] > hi {
					hi = p[j]
				}
			}
			pts = append(pts, p)
			labels = append(labels, c)
		}
	}
	for i := 0; i < int(nNoise); i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = lo + rng.Float64()*(hi-lo)
		}
		pts = append(pts, p)
		labels = append(labels, -1)
	}
	return pts, labels
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Kernel = affinity.Kernel{K: 0.3, P: 2}
	cfg.LSH = lsh.Config{Projections: 6, Tables: 10, R: 4, Seed: 1}
	cfg.Delta = 200
	cfg.DensityThreshold = 0.75
	return cfg
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Delta != 800 || c.MaxOuter != 10 || c.Kernel.K != 1 || c.Tol <= 0 {
		t.Fatalf("withDefaults gave %+v", c)
	}
	// Regression: a zero-value Config must take the documented 0.75 density
	// threshold, not report every peeled subgraph.
	if c.DensityThreshold != 0.75 {
		t.Fatalf("withDefaults left DensityThreshold at %v, want 0.75", c.DensityThreshold)
	}
	// Explicit values survive.
	c2 := Config{Delta: 5, MaxOuter: 3, DensityThreshold: 0.4}.withDefaults()
	if c2.Delta != 5 || c2.MaxOuter != 3 || c2.DensityThreshold != 0.4 {
		t.Fatalf("withDefaults clobbered explicit values: %+v", c2)
	}
}

// A zero-value Config (density threshold included) must behave like the
// documented defaults end to end. The fixture is a set of isolated close
// pairs: a 2-point subgraph has π = a/2 ≤ 0.5, below the 0.75 default, so
// nothing may be reported — before the DensityThreshold default fix, the
// zero threshold reported every peeled pair.
func TestZeroConfigFiltersByDensity(t *testing.T) {
	var pts [][]float64
	for i := 0; i < 12; i++ {
		base := float64(i) * 100
		pts = append(pts, []float64{base, 0}, []float64{base + 0.1, 0})
	}
	det, err := NewDetector(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := det.DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 0 {
		t.Fatalf("zero-value Config reported %d clusters below the default density threshold (first: density=%v size=%d)",
			len(clusters), clusters[0].Density, clusters[0].Size())
	}
}

func TestThetaGrowth(t *testing.T) {
	prev := 0.0
	for c := 1; c <= 30; c++ {
		th := thetaGrowth(c)
		if th <= prev {
			t.Fatalf("θ not increasing at c=%d", c)
		}
		if th < 0 || th > 1 {
			t.Fatalf("θ(%d) = %v out of [0,1]", c, th)
		}
		prev = th
	}
	if thetaGrowth(40) < 0.999 {
		t.Errorf("θ(40) = %v, want ≈ 1", thetaGrowth(40))
	}
	// Paper's schedule: θ(8) = 0.5.
	if math.Abs(thetaGrowth(8)-0.5) > 1e-12 {
		t.Errorf("θ(8) = %v, want 0.5", thetaGrowth(8))
	}
}

// Proposition 1: points inside the inner ball are infective, points outside
// the outer ball are not. Verified empirically on a converged subgraph.
func TestROIProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {12, 12}}, 30, 0.5, 20)
	kern := affinity.Kernel{K: 1, P: 2}
	o, err := affinity.NewOracle(pts, kern)
	if err != nil {
		t.Fatal(err)
	}
	st, err := lid.NewState(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	st.Extend(all)
	st.Solve(context.Background(), 5000, 1e-10)
	sup, w := st.SupportWeights()
	pi := st.Density()
	roi := EstimateROI(o.Mat, sup, w, pi, kern, 5)
	if !(roi.Rin <= roi.Rout) {
		t.Fatalf("Rin %v > Rout %v", roi.Rin, roi.Rout)
	}
	if !(roi.R >= roi.Rin && roi.R <= roi.Rout) {
		t.Fatalf("R %v outside [Rin=%v, Rout=%v]", roi.R, roi.Rin, roi.Rout)
	}
	inSupport := make(map[int]bool, len(sup))
	for _, i := range sup {
		inSupport[i] = true
	}
	for j := range pts {
		dist := kern.Distance(pts[j], roi.D)
		// π(s_j, x̂) computed directly.
		var gj float64
		for tt, i := range sup {
			if i != j {
				gj += w[tt] * kern.Affinity(pts[j], pts[i])
			}
		}
		payoff := gj - pi
		// Property 1 applies to candidate vertices outside the support: for
		// j ∈ α the paper's derivation counts the diagonal as e⁰ = 1, while
		// Eq. 1 zeroes it, so converged members (payoff 0) may sit inside the
		// inner ball. ALID only ever queries the ROI for new vertices.
		if !inSupport[j] && dist < roi.Rin-1e-9 && payoff <= 0 {
			t.Errorf("point %d inside inner ball (d=%v < Rin=%v) but payoff %v ≤ 0", j, dist, roi.Rin, payoff)
		}
		// Property 2 holds for every vertex (the triangle bound is valid with
		// a zero diagonal): outside the outer ball means non-infective.
		if dist > roi.Rout+1e-9 && payoff >= 0 {
			t.Errorf("point %d outside outer ball (d=%v > Rout=%v) but payoff %v ≥ 0", j, dist, roi.Rout, payoff)
		}
	}
}

func TestROIDegenerate(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}}
	k := affinity.DefaultKernel()
	m, err := matrix.FromRows(pts)
	if err != nil {
		t.Fatal(err)
	}
	roi := EstimateROI(m, []int{0}, []float64{1}, 0, k, 1)
	if !math.IsInf(roi.R, 1) {
		t.Fatalf("degenerate ROI should be unbounded, got %v", roi.R)
	}
	if !roi.Contains([]float64{100, 100}, k) {
		t.Error("unbounded ROI must contain everything")
	}
}

func TestDetectFromFindsSeedBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, labels := blobs(rng, [][]float64{{0, 0}, {15, 0}, {0, 15}}, 40, 0.3, 30)
	det, err := NewDetector(pts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := det.DetectFrom(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dominant sets select the coherent core of a Gaussian blob, not every
	// sample; a majority of the blob with perfect purity is the correct
	// behaviour (cf. the paper's AVG-F ≈ 0.7–0.9 on synthetic mixtures).
	if cl.Size() < 20 {
		t.Fatalf("cluster from seed 0 has %d members, want ≥ 20 of blob 0", cl.Size())
	}
	for _, m := range cl.Members {
		if labels[m] != 0 {
			t.Errorf("member %d has label %d, want 0", m, labels[m])
		}
	}
	if cl.Density <= 0.8 {
		t.Errorf("blob density = %v, want > 0.8", cl.Density)
	}
	var wsum float64
	for _, w := range cl.Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-6 {
		t.Errorf("weights sum to %v", wsum)
	}
}

func TestDetectAllFindsAllBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts, labels := blobs(rng, [][]float64{{0, 0}, {15, 0}, {0, 15}, {15, 15}}, 35, 0.3, 60)
	det, err := NewDetector(pts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := det.DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Peeling may split a blob into a dense core plus a smaller secondary
	// fragment (both above the 0.75 density threshold); what must hold is
	// that every surviving cluster is pure blob material and that all four
	// blobs are covered.
	if len(clusters) < 4 {
		t.Fatalf("detected %d clusters, want ≥ 4", len(clusters))
	}
	covered := make(map[int]bool)
	for _, cl := range clusters {
		counts := map[int]int{}
		for _, m := range cl.Members {
			counts[labels[m]]++
		}
		major, majorN := -2, 0
		for l, c := range counts {
			if c > majorN {
				major, majorN = l, c
			}
		}
		if major == -1 {
			t.Fatalf("noise cluster above density threshold: density=%v size=%d", cl.Density, cl.Size())
		}
		if float64(majorN) < 0.9*float64(cl.Size()) {
			t.Errorf("impure cluster: %v", counts)
		}
		covered[major] = true
	}
	for b := 0; b < 4; b++ {
		if !covered[b] {
			t.Errorf("blob %d not covered by any detected cluster", b)
		}
	}
	// Densities sorted decreasing.
	for i := 1; i < len(clusters); i++ {
		if clusters[i].Density > clusters[i-1].Density {
			t.Error("clusters not sorted by density")
		}
	}
}

func TestPeelingConsumesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts, _ := blobs(rng, [][]float64{{0, 0}}, 20, 0.4, 20)
	det, err := NewDetector(pts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := det.DetectAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// No point may appear in two clusters after peeling.
	seen := make(map[int]bool)
	for _, cl := range clusters {
		for _, m := range cl.Members {
			if seen[m] {
				t.Fatalf("point %d in two peeled clusters", m)
			}
			seen[m] = true
		}
	}
}

func TestLabels(t *testing.T) {
	clusters := []*Cluster{
		{Members: []int{0, 1, 2}, Density: 0.9},
		{Members: []int{2, 3}, Density: 0.8}, // overlaps on 2; lower density
	}
	lbl := Labels(6, clusters)
	want := []int{0, 0, 0, 1, -1, -1}
	for i := range want {
		if lbl[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", lbl, want)
		}
	}
}

func TestDetectFromInactiveSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts, _ := blobs(rng, [][]float64{{0, 0}}, 10, 0.3, 0)
	det, err := NewDetector(pts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	active := make([]bool, len(pts))
	if _, err := det.DetectFrom(context.Background(), 0, active); err == nil {
		t.Fatal("inactive seed must error")
	}
}

func TestContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {10, 10}}, 50, 0.5, 50)
	det, err := NewDetector(pts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.DetectFrom(ctx, 0, nil); err == nil {
		t.Error("cancelled context should abort DetectFrom")
	}
	if _, err := det.DetectAll(ctx); err == nil {
		t.Error("cancelled context should abort DetectAll")
	}
}

func TestActiveFilterExcludesPeeled(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts, _ := blobs(rng, [][]float64{{0, 0}}, 30, 0.4, 0)
	det, err := NewDetector(pts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	active := make([]bool, len(pts))
	for i := range active {
		active[i] = i%2 == 0 // only even points active
	}
	cl, err := det.DetectFrom(context.Background(), 0, active)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cl.Members {
		if m%2 != 0 {
			t.Fatalf("peeled (inactive) point %d in cluster", m)
		}
	}
}

func TestNewDetectorWithIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts, _ := blobs(rng, [][]float64{{0, 0}}, 20, 0.3, 0)
	cfg := testConfig()
	idx, err := lsh.Build(pts, cfg.LSH)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDetectorWithIndex(pts, cfg, idx); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDetectorWithIndex(pts[:10], cfg, idx); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestClusterInstrumentation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts, _ := blobs(rng, [][]float64{{0, 0}, {12, 12}}, 30, 0.4, 10)
	det, err := NewDetector(pts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := det.Oracle().Computed()
	cl, err := det.DetectFrom(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.LIDIterations <= 0 || cl.OuterIterations <= 0 || cl.PeakEntries <= 0 {
		t.Fatalf("missing instrumentation: %+v", cl)
	}
	if det.Oracle().Computed() <= before {
		t.Error("oracle did not count kernel evaluations")
	}
	if det.PeakEntries() < cl.PeakEntries {
		t.Error("detector peak not updated")
	}
	// ALID must touch far fewer entries than the full matrix.
	n := int64(len(pts))
	if det.Oracle().Computed() >= n*n {
		t.Errorf("ALID computed %d entries, full matrix is %d", det.Oracle().Computed(), n*n)
	}
}

func TestMembersSortedAndWeightsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts, _ := blobs(rng, [][]float64{{0, 0}}, 25, 0.4, 5)
	det, err := NewDetector(pts, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := det.DetectFrom(context.Background(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cl.Members); i++ {
		if cl.Members[i] <= cl.Members[i-1] {
			t.Fatal("members not strictly ascending")
		}
	}
	if len(cl.Members) != len(cl.Weights) {
		t.Fatal("members/weights length mismatch")
	}
}
