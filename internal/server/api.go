package server

import "alid/internal/core"

// ClusterJSON is the machine-readable form of one dominant cluster. It is
// the single wire struct shared by the daemon's /v1/clusters endpoint and
// cmd/alid's -json output, so offline and served answers are directly
// diffable.
type ClusterJSON struct {
	// ID is the cluster's index in the engine's published cluster list (the
	// value Assign returns in Cluster).
	ID int `json:"id"`
	// Size is the number of member points.
	Size int `json:"size"`
	// Density is the converged graph density π(x).
	Density float64 `json:"density"`
	// Members are the member point indices, ascending. Omitted when the
	// caller asked for summaries only.
	Members []int `json:"members,omitempty"`
	// Weights are the simplex weights parallel to Members.
	Weights []float64 `json:"weights,omitempty"`
}

// ClustersFromCore converts detected clusters to wire form.
func ClustersFromCore(cls []*core.Cluster, withMembers bool) []ClusterJSON {
	out := make([]ClusterJSON, len(cls))
	for i, c := range cls {
		out[i] = ClusterJSON{ID: i, Size: c.Size(), Density: c.Density}
		if withMembers {
			out[i].Members = c.Members
			out[i].Weights = c.Weights
		}
	}
	return out
}

// ClustersResponse is the body of GET /v1/clusters.
type ClustersResponse struct {
	N        int           `json:"n"`
	Commits  int           `json:"commits"`
	Clusters []ClusterJSON `json:"clusters"`
}

// AssignRequest is the body of POST /v1/assign. Exactly one of Point
// (single-query form), Points (batch form), Set (single set, minhash
// backend) or Sets (batched sets) must be set.
type AssignRequest struct {
	Point []float64 `json:"point,omitempty"`
	// Points requests a batched assign: the whole batch is classified
	// against one published engine state and the response is an
	// AssignBatchResponse with one result per point, in order. Batches
	// larger than the server's configured maximum are rejected with 413.
	Points [][]float64 `json:"points,omitempty"`
	// Set is the set form of Point: the element set is MinHash-signed with
	// the engine's parameters and the signature assigned. Requires the
	// minhash backend (400 backend_mismatch on a dense engine).
	Set []string `json:"set,omitempty"`
	// Sets is the batched set form of Points.
	Sets [][]string `json:"sets,omitempty"`
}

// AssignBatchResponse is the body of a successful batched assign.
type AssignBatchResponse struct {
	Results []AssignResponse `json:"results"`
}

// AssignResponse is the body of a successful assign.
type AssignResponse struct {
	// Cluster is the winning cluster id, -1 for noise.
	Cluster int `json:"cluster"`
	// Score is the query's π-affinity against the winning cluster.
	Score float64 `json:"score"`
	// Density is the winning cluster's π(x).
	Density float64 `json:"density"`
	// Infective reports whether the cluster would absorb the query.
	Infective bool `json:"infective"`
	// Candidates is the number of LSH candidates inspected.
	Candidates int `json:"candidates"`
}

// IngestRequest is the body of POST /v1/ingest. Exactly one of Points
// (dense form) or Sets (set form, minhash backend) must be set.
type IngestRequest struct {
	Points [][]float64 `json:"points,omitempty"`
	// Sets is the set form: each element set is MinHash-signed with the
	// engine's parameters and the signatures committed. Requires the
	// minhash backend (400 backend_mismatch on a dense engine).
	Sets [][]string `json:"sets,omitempty"`
	// Wait requests a synchronous commit: the response is sent only after
	// the points are detected and published (and reports any commit error).
	Wait bool `json:"wait,omitempty"`
}

// IngestResponse is the body of a successful ingest.
type IngestResponse struct {
	Accepted int `json:"accepted"`
}

// EvictRequest is the body of POST /v1/evict.
type EvictRequest struct {
	// IDs are the committed point ids to tombstone. Already-evicted ids are
	// skipped (retries are idempotent); out-of-range ids fail the request.
	IDs []int `json:"ids"`
}

// EvictResponse is the body of a successful evict.
type EvictResponse struct {
	// Evicted is the number of points newly tombstoned.
	Evicted int `json:"evicted"`
	// AlreadyDead is the number of distinct requested ids that were NOT
	// newly tombstoned — already evicted before this call (retries are
	// idempotent, so a full retry reports evicted=0, already_dead=all).
	// Out-of-range ids fail the whole request instead.
	AlreadyDead int `json:"already_dead"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	N                int   `json:"n"`
	LiveN            int   `json:"live_n"`
	Dim              int   `json:"dim"`
	Clusters         int   `json:"clusters"`
	Commits          int   `json:"commits"`
	Evicted          int64 `json:"evicted"`
	QueuedPoints     int64 `json:"queued_points"`
	Assigns          int64 `json:"assigns"`
	Ingested         int64 `json:"ingested"`
	AffinityComputed int64 `json:"affinity_computed"`
	WriterErrors     int64 `json:"writer_errors"`
	UptimeSeconds    int64 `json:"uptime_seconds"`
	// Generation is the id generation of the published state (bumped by
	// every generation compaction; the max across shards when sharded).
	Generation int `json:"generation"`
	// EverSeenIDs counts ids ever minted across all generations — committed
	// ids plus those retired by past compactions. The gap to N is the
	// bookkeeping that renumbering has reclaimed.
	EverSeenIDs int `json:"ever_seen_ids"`
	// DeltaChainLen is the current delta-snapshot chain length (0 right
	// after a full snapshot, or always 0 when delta snapshots are off).
	DeltaChainLen int `json:"delta_chain_len"`
	// AssignP50/95/99Seconds are single-point assign latency quantiles
	// derived from the engine's power-of-two histogram (upper-bound
	// interpolated; 0 until the first assign or when metrics are compiled
	// out with the noobs tag).
	AssignP50Seconds float64 `json:"assign_p50_seconds"`
	AssignP95Seconds float64 `json:"assign_p95_seconds"`
	AssignP99Seconds float64 `json:"assign_p99_seconds"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a machine-readable error class for callers that dispatch on
	// failure kind rather than message text. Currently only
	// "backend_mismatch" (set form against a dense engine or vice versa);
	// empty for everything else.
	Code string `json:"code,omitempty"`
}

// CodeBackendMismatch is the ErrorResponse.Code of a request whose form
// (set vs dense) does not match the engine's index backend.
const CodeBackendMismatch = "backend_mismatch"
