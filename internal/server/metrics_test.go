//go:build !noobs

package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// GET /metrics serves Prometheus text exposition covering the engine AND
// the HTTP layer, and the scrape endpoint itself stays unmetered.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer(t)

	// Generate traffic through the instrumented mux.
	var ar AssignResponse
	doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Point: []float64{0.1, 0.1}}, &ar)
	var sr StatsResponse
	doJSON(t, s.Handler(), http.MethodGet, "/v1/stats", nil, &sr)
	if sr.AssignP50Seconds <= 0 {
		t.Errorf("stats assign_p50_seconds = %v, want > 0 after an assign", sr.AssignP50Seconds)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	text := rec.Body.String()
	for _, needle := range []string{
		`alid_assign_duration_seconds_count{mode="single"} 1`,
		`alid_http_request_duration_seconds_count{route="/v1/assign"} 1`,
		`alid_http_responses_total{code="2xx"} 2`,
		"alid_points{state=",
		"alid_clusters ",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("exposition lacks %q", needle)
		}
	}
	// The scrape itself must not appear as a route.
	if strings.Contains(text, `route="/metrics"`) {
		t.Error("/metrics metered itself")
	}

	// POST to the scrape endpoint is rejected.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

// Request logging: errors always log, successes are sampled.
func TestRequestLogSampling(t *testing.T) {
	var buf bytes.Buffer
	logged, _ := testServerOpts(t, Options{
		Logger:   slog.New(slog.NewJSONHandler(&buf, nil)),
		LogEvery: 2,
	})

	for i := 0; i < 4; i++ {
		var ar AssignResponse
		doJSON(t, logged.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Point: []float64{0.1, 0.1}}, &ar)
	}
	// One bad request: must log regardless of sampling.
	rec := httptest.NewRecorder()
	rec.Body = &bytes.Buffer{}
	req := httptest.NewRequest(http.MethodPost, "/v1/assign", strings.NewReader(`{"point":[]}`))
	logged.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad assign = %d", rec.Code)
	}

	var infos, warns int
	dec := json.NewDecoder(&buf)
	for {
		var line struct {
			Level  string `json:"level"`
			Msg    string `json:"msg"`
			Status int    `json:"status"`
		}
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if line.Msg != "request" {
			continue
		}
		switch line.Level {
		case "INFO":
			infos++
		case "WARN":
			warns++
			if line.Status != http.StatusBadRequest {
				t.Errorf("warn status %d", line.Status)
			}
		}
	}
	if infos != 2 { // 4 successes sampled 1-in-2
		t.Errorf("sampled %d success logs, want 2", infos)
	}
	if warns != 1 {
		t.Errorf("logged %d error requests, want 1", warns)
	}
}
