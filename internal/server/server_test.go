package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"alid/internal/affinity"
	"alid/internal/core"
	"alid/internal/engine"
	"alid/internal/lsh"
	"alid/internal/testutil"
)

func testServer(t *testing.T) (*Server, *engine.Engine) {
	return testServerOpts(t, Options{})
}

// testServerOpts builds a fresh engine per call (a Server registers its HTTP
// metrics into the engine's registry, so servers and engines pair 1:1).
func testServerOpts(t *testing.T, opts Options) (*Server, *engine.Engine) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Kernel = affinity.Kernel{K: 0.3, P: 2}
	cfg.LSH = lsh.Config{Projections: 6, Tables: 10, R: 4, Seed: 1}
	cfg.Delta = 200
	pts, _ := testutil.Blobs(3, [][]float64{{0, 0}, {15, 15}}, 30, 0.3, 10, 0, 15)
	eng, err := engine.New(engine.Config{Core: cfg, BatchSize: 50}, pts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return New(eng, opts), eng
}

func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	if out != nil && res.StatusCode < 300 {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return res
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	res := doJSON(t, s.Handler(), http.MethodGet, "/healthz", nil, nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
}

func TestAssignEndpoint(t *testing.T) {
	s, eng := testServer(t)
	var out AssignResponse
	res := doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Point: []float64{0.1, 0}}, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if out.Cluster < 0 || !out.Infective {
		t.Fatalf("center not served: %+v", out)
	}
	// The HTTP answer must equal the in-process answer exactly.
	want, err := eng.Assign([]float64{0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cluster != want.Cluster || out.Score != want.Score || out.Density != want.Density {
		t.Fatalf("http %+v vs engine %+v", out, want)
	}

	// Errors: wrong width, empty point, bad JSON, wrong method.
	if res := doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Point: []float64{1, 2, 3}}, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong width: status %d", res.StatusCode)
	}
	if res := doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", AssignRequest{}, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty point: status %d", res.StatusCode)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/assign", bytes.NewReader([]byte("{nope")))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", rec.Code)
	}
	if res := doJSON(t, s.Handler(), http.MethodGet, "/v1/assign", nil, nil); res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET assign: status %d", res.StatusCode)
	}
}

func TestAssignBatchEndpoint(t *testing.T) {
	s, eng := testServer(t)
	pts := [][]float64{{0.1, 0}, {15.1, 14.9}, {400, -400}}
	var out AssignBatchResponse
	res := doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Points: pts}, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if len(out.Results) != len(pts) {
		t.Fatalf("results = %d, want %d", len(out.Results), len(pts))
	}
	// The HTTP batch answer must equal the in-process batch answer exactly,
	// per point and in order.
	want, err := eng.AssignBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		w := want[i]
		if r.Cluster != w.Cluster || r.Score != w.Score || r.Density != w.Density ||
			r.Infective != w.Infective || r.Candidates != w.Candidates {
			t.Fatalf("result %d: http %+v vs engine %+v", i, r, w)
		}
	}
	if out.Results[0].Cluster < 0 || out.Results[2].Cluster != -1 {
		t.Fatalf("unexpected batch answers: %+v", out.Results)
	}

	// One bad point fails the whole batch, naming its index.
	bad := AssignRequest{Points: [][]float64{{0, 0}, {1, 2, 3}}}
	if res := doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", bad, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: status %d", res.StatusCode)
	}
	// Setting both forms is rejected.
	both := AssignRequest{Point: []float64{0, 0}, Points: [][]float64{{1, 1}}}
	if res := doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", both, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("both forms: status %d", res.StatusCode)
	}
}

func TestAssignBatchMaxRejects(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Kernel = affinity.Kernel{K: 0.3, P: 2}
	cfg.LSH = lsh.Config{Projections: 6, Tables: 10, R: 4, Seed: 1}
	pts, _ := testutil.Blobs(3, [][]float64{{0, 0}}, 30, 0.3, 0, 0, 1)
	eng, err := engine.New(engine.Config{Core: cfg, BatchSize: 50}, pts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	s := New(eng, Options{AssignBatchMax: 2})

	ok := AssignRequest{Points: [][]float64{{0, 0}, {1, 1}}}
	if res := doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", ok, nil); res.StatusCode != http.StatusOK {
		t.Fatalf("at-cap batch: status %d", res.StatusCode)
	}
	over := AssignRequest{Points: [][]float64{{0, 0}, {1, 1}, {2, 2}}}
	res := doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", over, nil)
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap batch: status %d, want 413", res.StatusCode)
	}
	// 413 is decided before any scoring: the engine never saw the batch.
	if got := eng.Stats().Assigns; got != 2 {
		t.Fatalf("assigns = %d, want 2 (rejected batch must not be scored)", got)
	}
}

func TestIngestEndpointWaited(t *testing.T) {
	s, eng := testServer(t)
	before := eng.Stats().N
	pts, _ := testutil.Blobs(19, [][]float64{{-20, -20}}, 30, 0.3, 0, 0, 1)
	var out IngestResponse
	res := doJSON(t, s.Handler(), http.MethodPost, "/v1/ingest", IngestRequest{Points: pts, Wait: true}, &out)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", res.StatusCode)
	}
	if out.Accepted != len(pts) {
		t.Fatalf("accepted %d, want %d", out.Accepted, len(pts))
	}
	if got := eng.Stats().N; got != before+len(pts) {
		t.Fatalf("N = %d, want %d", got, before+len(pts))
	}
	// The new blob is servable immediately after the waited ingest.
	var a AssignResponse
	doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Point: []float64{-20, -20.1}}, &a)
	if a.Cluster < 0 || !a.Infective {
		t.Fatalf("ingested blob not served: %+v", a)
	}

	if res := doJSON(t, s.Handler(), http.MethodPost, "/v1/ingest", IngestRequest{}, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest: status %d", res.StatusCode)
	}
	if res := doJSON(t, s.Handler(), http.MethodPost, "/v1/ingest", IngestRequest{Points: [][]float64{{1, 2, 3}}}, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-width ingest: status %d", res.StatusCode)
	}
}

func TestClustersEndpoint(t *testing.T) {
	s, eng := testServer(t)
	var out ClustersResponse
	res := doJSON(t, s.Handler(), http.MethodGet, "/v1/clusters", nil, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if out.N != eng.Stats().N || len(out.Clusters) != len(eng.Clusters()) {
		t.Fatalf("response %+v vs engine n=%d clusters=%d", out, eng.Stats().N, len(eng.Clusters()))
	}
	for i, c := range out.Clusters {
		if c.ID != i || c.Size == 0 || len(c.Members) != c.Size || len(c.Weights) != c.Size {
			t.Fatalf("cluster %d malformed: %+v", i, c)
		}
	}
	// Summary form omits members.
	var sum ClustersResponse
	doJSON(t, s.Handler(), http.MethodGet, "/v1/clusters?members=false", nil, &sum)
	for i, c := range sum.Clusters {
		if len(c.Members) != 0 || len(c.Weights) != 0 {
			t.Fatalf("summary cluster %d has members: %+v", i, c)
		}
		if c.Size != out.Clusters[i].Size || c.Density != out.Clusters[i].Density {
			t.Fatalf("summary cluster %d disagrees: %+v vs %+v", i, c, out.Clusters[i])
		}
	}
	if res := doJSON(t, s.Handler(), http.MethodGet, "/v1/clusters?members=banana", nil, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad members flag: status %d", res.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	doJSON(t, s.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Point: []float64{0, 0}}, nil)
	var out StatsResponse
	res := doJSON(t, s.Handler(), http.MethodGet, "/v1/stats", nil, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if out.N == 0 || out.Dim != 2 || out.Clusters == 0 || out.Assigns == 0 {
		t.Fatalf("stats %+v", out)
	}
}

// Serve must come up, answer over a real socket, and shut down gracefully on
// context cancellation.
func TestServeGracefulShutdown(t *testing.T) {
	s, _ := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	// Pick a free port first.
	probe := httptest.NewServer(http.NotFoundHandler())
	addr := probe.Listener.Addr().String()
	probe.Close()

	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, addr) }()

	url := fmt.Sprintf("http://%s/healthz", addr)
	var up bool
	for i := 0; i < 100; i++ {
		if res, err := http.Get(url); err == nil {
			res.Body.Close()
			up = res.StatusCode == http.StatusOK
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !up {
		t.Fatal("server never came up")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown timed out")
	}
}

// POST /v1/evict tombstones points and the change is visible through every
// other endpoint: stats drop live_n, clusters shed the dead members.
func TestEvictEndpoint(t *testing.T) {
	s, eng := testServer(t)
	h := s.Handler()

	var before StatsResponse
	doJSON(t, h, http.MethodGet, "/v1/stats", nil, &before)
	if before.LiveN != before.N || before.Evicted != 0 {
		t.Fatalf("fresh stats %+v", before)
	}

	// Kill the whole second blob (ids 30..59) plus two noise points.
	ids := []int{60, 61}
	for i := 30; i < 60; i++ {
		ids = append(ids, i)
	}
	var ev EvictResponse
	res := doJSON(t, h, http.MethodPost, "/v1/evict", EvictRequest{IDs: ids}, &ev)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("evict status %d", res.StatusCode)
	}
	if ev.Evicted != len(ids) {
		t.Fatalf("evicted %d, want %d", ev.Evicted, len(ids))
	}
	// Idempotent retry.
	doJSON(t, h, http.MethodPost, "/v1/evict", EvictRequest{IDs: ids}, &ev)
	if ev.Evicted != 0 {
		t.Fatalf("retry evicted %d, want 0", ev.Evicted)
	}

	var after StatsResponse
	doJSON(t, h, http.MethodGet, "/v1/stats", nil, &after)
	if after.LiveN != before.N-len(ids) || after.Evicted != int64(len(ids)) || after.N != before.N {
		t.Fatalf("stats after evict %+v (before %+v)", after, before)
	}

	var cls ClustersResponse
	doJSON(t, h, http.MethodGet, "/v1/clusters", nil, &cls)
	for _, cl := range cls.Clusters {
		for _, m := range cl.Members {
			if m >= 30 && m < 60 {
				t.Fatalf("cluster %d still contains evicted member %d", cl.ID, m)
			}
		}
	}
	// The evicted blob's center no longer assigns to a blob-30..59 cluster;
	// the surviving blob still assigns.
	var a AssignResponse
	doJSON(t, h, http.MethodPost, "/v1/assign", AssignRequest{Point: []float64{0.02, 0.01}}, &a)
	if a.Cluster < 0 {
		t.Fatal("surviving blob unassignable after evict")
	}

	// Bad requests: empty ids, out-of-range ids, wrong method.
	if res := doJSON(t, h, http.MethodPost, "/v1/evict", EvictRequest{}, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ids → %d", res.StatusCode)
	}
	if res := doJSON(t, h, http.MethodPost, "/v1/evict", EvictRequest{IDs: []int{99999}}, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range ids → %d", res.StatusCode)
	}
	if res := doJSON(t, h, http.MethodGet, "/v1/evict", nil, nil); res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET → %d", res.StatusCode)
	}
	_ = eng
}

// EvictResponse.already_dead reports how many DISTINCT requested ids were
// already tombstoned, so clients can tell a no-op retry from a partial one.
func TestEvictAlreadyDead(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	ids := []int{10, 11, 12, 13}
	var ev EvictResponse
	doJSON(t, h, http.MethodPost, "/v1/evict", EvictRequest{IDs: ids}, &ev)
	if ev.Evicted != len(ids) || ev.AlreadyDead != 0 {
		t.Fatalf("fresh evict %+v, want evicted=%d already_dead=0", ev, len(ids))
	}

	// Full retry: nothing newly evicted, everything already dead.
	doJSON(t, h, http.MethodPost, "/v1/evict", EvictRequest{IDs: ids}, &ev)
	if ev.Evicted != 0 || ev.AlreadyDead != len(ids) {
		t.Fatalf("retry %+v, want evicted=0 already_dead=%d", ev, len(ids))
	}

	// Mixed request with duplicates: dead ids and dupes each count ONCE.
	doJSON(t, h, http.MethodPost, "/v1/evict",
		EvictRequest{IDs: []int{10, 10, 11, 20, 20, 21}}, &ev)
	if ev.Evicted != 2 || ev.AlreadyDead != 2 {
		t.Fatalf("mixed %+v, want evicted=2 already_dead=2", ev)
	}
}

// GET /v1/stats surfaces the generation counters and, when the operator
// wired a delta chain, its current length.
func TestStatsGenerationFields(t *testing.T) {
	s, eng := testServer(t)
	h := s.Handler()

	var st StatsResponse
	doJSON(t, h, http.MethodGet, "/v1/stats", nil, &st)
	if st.Generation != 0 || st.DeltaChainLen != 0 {
		t.Fatalf("fresh stats %+v, want generation=0 delta_chain_len=0", st)
	}
	if st.EverSeenIDs != st.N {
		t.Fatalf("ever_seen_ids=%d, want %d (no compaction yet)", st.EverSeenIDs, st.N)
	}

	// Evict and compact: the generation bumps, ever-seen keeps counting the
	// released ids, live N shrinks to the survivors.
	before := st.N
	ids := []int{0, 1, 2, 3, 4}
	doJSON(t, h, http.MethodPost, "/v1/evict", EvictRequest{IDs: ids}, nil)
	if _, err := eng.CompactGeneration(context.Background()); err != nil {
		t.Fatal(err)
	}
	doJSON(t, h, http.MethodGet, "/v1/stats", nil, &st)
	if st.Generation != 1 {
		t.Fatalf("generation=%d after compaction, want 1", st.Generation)
	}
	if st.EverSeenIDs != before || st.N != before-len(ids) {
		t.Fatalf("stats after compaction %+v, want ever_seen_ids=%d n=%d",
			st, before, before-len(ids))
	}

	// With a chain length source wired, stats report it verbatim.
	chained, _ := testServerOpts(t, Options{DeltaChainLen: func() int { return 2 }})
	doJSON(t, chained.Handler(), http.MethodGet, "/v1/stats", nil, &st)
	if st.DeltaChainLen != 2 {
		t.Fatalf("delta_chain_len=%d, want 2", st.DeltaChainLen)
	}
}
