// Package server exposes a serving engine over HTTP/JSON — the alidd
// daemon's API surface:
//
//	POST /v1/assign   {"point":[...]}            → cluster/score/infective
//	POST /v1/assign   {"points":[[...],...]}     → batched: results per point
//	POST /v1/assign   {"set":["a","b"]}          → set form (minhash backend)
//	POST /v1/ingest   {"points":[[...]],"wait":b}→ accepted count
//	POST /v1/ingest   {"sets":[["a","b"],...]}   → set form (minhash backend)
//	POST /v1/evict    {"ids":[...]}              → evicted count
//	GET  /v1/clusters[?members=false]            → maintained clusters
//	GET  /v1/stats                               → engine counters
//	GET  /metrics                                → Prometheus text exposition
//	GET  /healthz                                → 200 once serving
//
// Handlers only touch the engine's lock-free read paths and its ingest
// queue, so the HTTP layer inherits the engine's concurrency contract:
// request handling never blocks the writer, and assign throughput scales
// with cores.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"alid/internal/engine"
	"alid/internal/index"
	"alid/internal/minhash"
	"alid/internal/obs"
)

// Options tunes the HTTP layer.
type Options struct {
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds graceful shutdown (default 5s).
	ShutdownGrace time.Duration
	// AssignBatchMax caps the number of points in one batched assign
	// (default 1024); larger batches are rejected with 413 before any
	// scoring work happens.
	AssignBatchMax int
	// Logger receives structured request logs (nil = no request logging).
	// Non-2xx responses are always logged; successes are sampled (below).
	Logger *slog.Logger
	// LogEvery samples successful request logs: 1 logs every request, n
	// logs every nth (default 100). Errors bypass sampling.
	LogEvery int
	// DeltaChainLen, when non-nil, reports the delta-snapshot chain length
	// for /v1/stats (wired by the daemon when -snapshot-delta-every is on;
	// must be safe to call from any goroutine).
	DeltaChainLen func() int
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.ShutdownGrace <= 0 {
		o.ShutdownGrace = 5 * time.Second
	}
	if o.AssignBatchMax <= 0 {
		o.AssignBatchMax = 1024
	}
	if o.LogEvery <= 0 {
		o.LogEvery = 100
	}
	return o
}

// httpMetrics is the HTTP-layer instrumentation, registered into the
// engine's registry so one /metrics scrape covers the whole process. The
// route label is the mux pattern, never the raw URL (bounded cardinality).
type httpMetrics struct {
	dur  map[string]*obs.Histogram // route → request duration
	code [6]*obs.Counter           // status class 0xx..5xx (0 unused)
}

func newHTTPMetrics(reg *obs.Registry, routes []string) *httpMetrics {
	m := &httpMetrics{dur: make(map[string]*obs.Histogram, len(routes))}
	for _, rt := range routes {
		h := obs.NewHistogram("alid_http_request_duration_seconds",
			"HTTP request latency by route.", `route="`+rt+`"`, 1e-9)
		m.dur[rt] = h
		reg.MustRegister(h)
	}
	for c := 2; c <= 5; c++ {
		m.code[c] = obs.NewCounter("alid_http_responses_total",
			"HTTP responses by status class.", fmt.Sprintf(`code="%dxx"`, c))
		reg.MustRegister(m.code[c])
	}
	return m
}

// Server wraps a serving engine — a single engine.Engine or a sharded
// engine.Sharded, anything satisfying engine.Serving — with the HTTP/JSON
// API. The handlers are identical either way: the Serving contract hides
// the scatter-gather behind the same lock-free read semantics.
type Server struct {
	eng    engine.Serving
	opts   Options
	mux    *http.ServeMux
	start  time.Time
	met    *httpMetrics
	logSeq atomic.Int64 // request counter driving success-log sampling
}

// New builds the server; the caller keeps ownership of the engine (and its
// Close). The server's HTTP metrics are registered into the engine's
// registry, so build at most one server per engine.
func New(eng engine.Serving, opts Options) *Server {
	s := &Server{eng: eng, opts: opts.withDefaults(), mux: http.NewServeMux(), start: time.Now()}
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"/v1/assign", s.handleAssign},
		{"/v1/ingest", s.handleIngest},
		{"/v1/evict", s.handleEvict},
		{"/v1/clusters", s.handleClusters},
		{"/v1/stats", s.handleStats},
		{"/healthz", s.handleHealth},
	}
	names := make([]string, len(routes))
	for i, rt := range routes {
		names[i] = rt.pattern
	}
	s.met = newHTTPMetrics(eng.Obs(), names)
	for _, rt := range routes {
		s.mux.Handle(rt.pattern, s.instrument(rt.pattern, rt.h))
	}
	// The scrape endpoint itself is neither metered nor logged.
	s.mux.Handle("/metrics", eng.Obs().Handler())
	return s
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route latency/status metrics and
// sampled structured request logs.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		el := time.Since(start)
		s.met.dur[route].Observe(el.Nanoseconds())
		if c := rec.status / 100; c >= 2 && c <= 5 {
			s.met.code[c].Inc()
		}
		if l := s.opts.Logger; l != nil {
			isErr := rec.status >= 400
			if isErr || s.logSeq.Add(1)%int64(s.opts.LogEvery) == 0 {
				lvl := slog.LevelInfo
				if isErr {
					lvl = slog.LevelWarn
				}
				l.LogAttrs(r.Context(), lvl, "request",
					slog.String("route", route),
					slog.String("method", r.Method),
					slog.Int("status", rec.status),
					slog.Duration("elapsed", el),
					slog.Bool("sampled", !isErr),
				)
			}
		}
	})
}

// Handler returns the routing handler (exported for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve runs an HTTP server on addr until ctx is cancelled, then shuts down
// gracefully within the configured grace period.
func (s *Server) Serve(ctx context.Context, addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeErrCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// backend returns the engine's normalized index backend name.
func (s *Server) backend() string {
	return index.Normalize(s.eng.Config().Core.Backend)
}

// requireBackend enforces the request-form ↔ index-backend pairing at the
// API boundary (the set-workload counterpart of the engine's dense
// dimension check): a mismatch is a typed 400 naming the engine's index
// backend, never a silent reinterpretation of signatures as coordinates.
func (s *Server) requireBackend(w http.ResponseWriter, want, form string) bool {
	if got := s.backend(); got != want {
		writeErrCode(w, http.StatusBadRequest, CodeBackendMismatch,
			"%s form requires the %q index backend; this engine serves %q", form, want, got)
		return false
	}
	return true
}

// signSets converts the set form to MinHash signatures with the engine's
// parameters, reporting the offending set's position on error.
func (s *Server) signSets(w http.ResponseWriter, sets [][]string) ([][]float64, bool) {
	cfg := s.eng.Config().Core.MinHash
	sigs := make([][]float64, len(sets))
	for i, set := range sets {
		sig, err := minhash.Signature(set, cfg)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "sets[%d]: %v", i, err)
			return nil, false
		}
		sigs[i] = sig
	}
	return sigs, true
}

// decodeBody strictly decodes one JSON object into dst.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AssignRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	forms := 0
	for _, set := range []bool{len(req.Point) > 0, len(req.Points) > 0, len(req.Set) > 0, len(req.Sets) > 0} {
		if set {
			forms++
		}
	}
	if forms > 1 {
		writeErr(w, http.StatusBadRequest, "set exactly one of point, points, set or sets")
		return
	}
	if len(req.Sets) > 0 {
		if !s.requireBackend(w, index.BackendMinHash, "sets") {
			return
		}
		sigs, ok := s.signSets(w, req.Sets)
		if !ok {
			return
		}
		s.assignBatch(w, sigs)
		return
	}
	if len(req.Set) > 0 {
		if !s.requireBackend(w, index.BackendMinHash, "set") {
			return
		}
		sig, err := minhash.Signature(req.Set, s.eng.Config().Core.MinHash)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "set: %v", err)
			return
		}
		req.Point = sig
	} else if len(req.Point) > 0 || len(req.Points) > 0 {
		// Dense forms are for dense engines: raw floats sent to a set
		// engine would be misread as signatures.
		if !s.requireBackend(w, index.BackendLSH, "point") {
			return
		}
	}
	if len(req.Points) > 0 {
		s.assignBatch(w, req.Points)
		return
	}
	if len(req.Point) == 0 {
		writeErr(w, http.StatusBadRequest, "empty point")
		return
	}
	a, err := s.eng.Assign(req.Point)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, AssignResponse{
		Cluster:    a.Cluster,
		Score:      a.Score,
		Density:    a.Density,
		Infective:  a.Infective,
		Candidates: a.Candidates,
	})
}

// assignBatch serves the batch form of /v1/assign: one engine AssignBatch
// call (one published state for the whole batch), results in request order.
func (s *Server) assignBatch(w http.ResponseWriter, points [][]float64) {
	if len(points) > s.opts.AssignBatchMax {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"batch of %d points exceeds the maximum of %d", len(points), s.opts.AssignBatchMax)
		return
	}
	as, err := s.eng.AssignBatch(points)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	results := make([]AssignResponse, len(as))
	for i, a := range as {
		results[i] = AssignResponse{
			Cluster:    a.Cluster,
			Score:      a.Score,
			Density:    a.Density,
			Infective:  a.Infective,
			Candidates: a.Candidates,
		}
	}
	writeJSON(w, http.StatusOK, AssignBatchResponse{Results: results})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req IngestRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Points) > 0 && len(req.Sets) > 0 {
		writeErr(w, http.StatusBadRequest, "set either points or sets, not both")
		return
	}
	if len(req.Sets) > 0 {
		if !s.requireBackend(w, index.BackendMinHash, "sets") {
			return
		}
		sigs, ok := s.signSets(w, req.Sets)
		if !ok {
			return
		}
		req.Points = sigs
	} else if len(req.Points) > 0 {
		if !s.requireBackend(w, index.BackendLSH, "points") {
			return
		}
	}
	if len(req.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	if err := s.eng.Ingest(r.Context(), req.Points); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Wait {
		if err := s.eng.Flush(r.Context()); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "commit: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Accepted: len(req.Points)})
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req EvictRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, "no ids")
		return
	}
	// Distinct ids, so already_dead is exact even for requests that repeat
	// an id (the engine newly-tombstones each id at most once).
	unique := make(map[int]struct{}, len(req.IDs))
	for _, id := range req.IDs {
		unique[id] = struct{}{}
	}
	n, err := s.eng.Evict(r.Context(), req.IDs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EvictResponse{Evicted: n, AlreadyDead: len(unique) - n})
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	withMembers := true
	if v := r.URL.Query().Get("members"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad members=%q", v)
			return
		}
		withMembers = b
	}
	// One pinned read per shard, so n, commits and the cluster list stay
	// coherent even while commits land concurrently (with multiple shards
	// the sums aggregate one coherent generation per shard).
	clusters, n, commits := s.eng.ClustersWithMeta()
	writeJSON(w, http.StatusOK, ClustersResponse{
		N:        n,
		Commits:  commits,
		Clusters: ClustersFromCore(clusters, withMembers),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.eng.Stats()
	chainLen := 0
	if s.opts.DeltaChainLen != nil {
		chainLen = s.opts.DeltaChainLen()
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		N:                st.N,
		LiveN:            st.LiveN,
		Dim:              st.Dim,
		Clusters:         st.Clusters,
		Commits:          st.Commits,
		Evicted:          st.Evicted,
		QueuedPoints:     st.QueuedPoints,
		Assigns:          st.Assigns,
		Ingested:         st.Ingested,
		AffinityComputed: st.AffinityComputed,
		WriterErrors:     st.WriterErrors,
		UptimeSeconds:    int64(time.Since(s.start).Seconds()),
		Generation:       st.Generation,
		EverSeenIDs:      st.EverSeenIDs,
		DeltaChainLen:    chainLen,
		AssignP50Seconds: st.AssignP50,
		AssignP95Seconds: st.AssignP95,
		AssignP99Seconds: st.AssignP99,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}
