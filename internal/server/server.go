// Package server exposes a serving engine over HTTP/JSON — the alidd
// daemon's API surface:
//
//	POST /v1/assign   {"point":[...]}            → cluster/score/infective
//	POST /v1/assign   {"points":[[...],...]}     → batched: results per point
//	POST /v1/ingest   {"points":[[...]],"wait":b}→ accepted count
//	POST /v1/evict    {"ids":[...]}              → evicted count
//	GET  /v1/clusters[?members=false]            → maintained clusters
//	GET  /v1/stats                               → engine counters
//	GET  /healthz                                → 200 once serving
//
// Handlers only touch the engine's lock-free read paths and its ingest
// queue, so the HTTP layer inherits the engine's concurrency contract:
// request handling never blocks the writer, and assign throughput scales
// with cores.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"alid/internal/engine"
)

// Options tunes the HTTP layer.
type Options struct {
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds graceful shutdown (default 5s).
	ShutdownGrace time.Duration
	// AssignBatchMax caps the number of points in one batched assign
	// (default 1024); larger batches are rejected with 413 before any
	// scoring work happens.
	AssignBatchMax int
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.ShutdownGrace <= 0 {
		o.ShutdownGrace = 5 * time.Second
	}
	if o.AssignBatchMax <= 0 {
		o.AssignBatchMax = 1024
	}
	return o
}

// Server wraps an engine with the HTTP/JSON API.
type Server struct {
	eng   *engine.Engine
	opts  Options
	mux   *http.ServeMux
	start time.Time
}

// New builds the server; the caller keeps ownership of the engine (and its
// Close).
func New(eng *engine.Engine, opts Options) *Server {
	s := &Server{eng: eng, opts: opts.withDefaults(), mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/v1/assign", s.handleAssign)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/evict", s.handleEvict)
	s.mux.HandleFunc("/v1/clusters", s.handleClusters)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// Handler returns the routing handler (exported for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve runs an HTTP server on addr until ctx is cancelled, then shuts down
// gracefully within the configured grace period.
func (s *Server) Serve(ctx context.Context, addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes one JSON object into dst.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AssignRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Points) > 0 {
		if len(req.Point) > 0 {
			writeErr(w, http.StatusBadRequest, "set either point or points, not both")
			return
		}
		s.assignBatch(w, req.Points)
		return
	}
	if len(req.Point) == 0 {
		writeErr(w, http.StatusBadRequest, "empty point")
		return
	}
	a, err := s.eng.Assign(req.Point)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, AssignResponse{
		Cluster:    a.Cluster,
		Score:      a.Score,
		Density:    a.Density,
		Infective:  a.Infective,
		Candidates: a.Candidates,
	})
}

// assignBatch serves the batch form of /v1/assign: one engine AssignBatch
// call (one published state for the whole batch), results in request order.
func (s *Server) assignBatch(w http.ResponseWriter, points [][]float64) {
	if len(points) > s.opts.AssignBatchMax {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"batch of %d points exceeds the maximum of %d", len(points), s.opts.AssignBatchMax)
		return
	}
	as, err := s.eng.AssignBatch(points)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	results := make([]AssignResponse, len(as))
	for i, a := range as {
		results[i] = AssignResponse{
			Cluster:    a.Cluster,
			Score:      a.Score,
			Density:    a.Density,
			Infective:  a.Infective,
			Candidates: a.Candidates,
		}
	}
	writeJSON(w, http.StatusOK, AssignBatchResponse{Results: results})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req IngestRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	if err := s.eng.Ingest(r.Context(), req.Points); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Wait {
		if err := s.eng.Flush(r.Context()); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "commit: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Accepted: len(req.Points)})
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req EvictRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, "no ids")
		return
	}
	n, err := s.eng.Evict(r.Context(), req.IDs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EvictResponse{Evicted: n})
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	withMembers := true
	if v := r.URL.Query().Get("members"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad members=%q", v)
			return
		}
		withMembers = b
	}
	// One published-view read, so n, commits and the cluster list all come
	// from the same generation even while commits land concurrently.
	v := s.eng.View()
	n := 0
	if v.Mat != nil {
		n = v.Mat.N
	}
	writeJSON(w, http.StatusOK, ClustersResponse{
		N:        n,
		Commits:  v.Commits,
		Clusters: ClustersFromCore(v.Clusters, withMembers),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		N:                st.N,
		LiveN:            st.LiveN,
		Dim:              st.Dim,
		Clusters:         st.Clusters,
		Commits:          st.Commits,
		Evicted:          st.Evicted,
		QueuedPoints:     st.QueuedPoints,
		Assigns:          st.Assigns,
		Ingested:         st.Ingested,
		AffinityComputed: st.AffinityComputed,
		WriterErrors:     st.WriterErrors,
		UptimeSeconds:    int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}
