package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"alid/internal/affinity"
	"alid/internal/core"
	"alid/internal/engine"
	"alid/internal/minhash"
)

var testMHCfg = minhash.Config{Bands: 8, Rows: 4, Seed: 3}

// testSets builds near-duplicate element sets (see the engine's minhash
// tests): community members share a 30-element base with one swapped element.
func testSets(seed int64, community, n int) [][]string {
	rng := rand.New(rand.NewSource(seed + int64(community)*1000))
	base := make([]string, 30)
	for i := range base {
		base[i] = fmt.Sprintf("c%d-e%d", community, i)
	}
	sets := make([][]string, n)
	for i := range sets {
		s := append([]string(nil), base...)
		s[rng.Intn(len(s))] = fmt.Sprintf("c%d-x%d", community, rng.Intn(10))
		sets[i] = s
	}
	return sets
}

func minhashServer(t *testing.T) (*Server, *engine.Engine) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Backend = "minhash"
	cfg.MinHash = testMHCfg
	cfg.Kernel = affinity.Kernel{K: 2, Jaccard: true}
	cfg.DensityThreshold = 0.5
	cfg.Delta = 200
	initial, err := minhash.Signatures(append(testSets(7, 0, 25), testSets(7, 1, 25)...), testMHCfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Config{Core: cfg, BatchSize: 25}, initial)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return New(eng, Options{}), eng
}

// errCode decodes the typed error body of a non-2xx response.
func errCode(t *testing.T, res *http.Response) string {
	t.Helper()
	var e ErrorResponse
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return e.Code
}

// The set forms end-to-end on a minhash engine: single set, batched sets,
// set ingest — and the answers match the in-process engine over the same
// signatures.
func TestAssignIngestSetForms(t *testing.T) {
	s, eng := minhashServer(t)
	h := s.Handler()

	probe := testSets(99, 0, 1)[0]
	var out AssignResponse
	res := doJSON(t, h, http.MethodPost, "/v1/assign", AssignRequest{Set: probe}, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("set assign: status %d", res.StatusCode)
	}
	if out.Cluster < 0 {
		t.Fatalf("community probe unassigned: %+v", out)
	}
	sig, err := minhash.Signature(probe, testMHCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Assign(sig)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cluster != want.Cluster || out.Score != want.Score {
		t.Fatalf("http %+v vs engine %+v", out, want)
	}

	batch := [][]string{testSets(99, 0, 1)[0], testSets(99, 1, 1)[0]}
	var bout AssignBatchResponse
	res = doJSON(t, h, http.MethodPost, "/v1/assign", AssignRequest{Sets: batch}, &bout)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("sets assign: status %d", res.StatusCode)
	}
	if len(bout.Results) != 2 || bout.Results[0].Cluster == bout.Results[1].Cluster {
		t.Fatalf("batched set assign: %+v", bout.Results)
	}

	var iout IngestResponse
	res = doJSON(t, h, http.MethodPost, "/v1/ingest", IngestRequest{Sets: testSets(7, 2, 25), Wait: true}, &iout)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("set ingest: status %d", res.StatusCode)
	}
	if iout.Accepted != 25 {
		t.Fatalf("accepted %d, want 25", iout.Accepted)
	}
	res = doJSON(t, h, http.MethodPost, "/v1/assign", AssignRequest{Set: testSets(99, 2, 1)[0]}, &out)
	if res.StatusCode != http.StatusOK || out.Cluster < 0 {
		t.Fatalf("third community after ingest: status %d, %+v", res.StatusCode, out)
	}
}

// Form/backend mismatches are typed 400s naming backend_mismatch: dense
// forms on a minhash engine and set forms on a dense engine, for both
// endpoints.
func TestBackendMismatchTyped400(t *testing.T) {
	ms, _ := minhashServer(t)
	ds, _ := testServer(t)

	check := func(h http.Handler, path string, body any, label string) {
		t.Helper()
		res := doJSON(t, h, http.MethodPost, path, body, nil)
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", label, res.StatusCode)
		}
		if code := errCode(t, res); code != CodeBackendMismatch {
			t.Fatalf("%s: code %q, want %q", label, code, CodeBackendMismatch)
		}
	}
	check(ms.Handler(), "/v1/assign", AssignRequest{Point: []float64{1, 2}}, "point on minhash")
	check(ms.Handler(), "/v1/assign", AssignRequest{Points: [][]float64{{1, 2}}}, "points on minhash")
	check(ms.Handler(), "/v1/ingest", IngestRequest{Points: [][]float64{{1, 2}}}, "ingest points on minhash")
	check(ds.Handler(), "/v1/assign", AssignRequest{Set: []string{"a", "b"}}, "set on lsh")
	check(ds.Handler(), "/v1/assign", AssignRequest{Sets: [][]string{{"a"}, {"b"}}}, "sets on lsh")
	check(ds.Handler(), "/v1/ingest", IngestRequest{Sets: [][]string{{"a", "b"}}}, "ingest sets on lsh")

	// Mixed and empty forms stay plain 400s without the mismatch code.
	res := doJSON(t, ms.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Set: []string{"a"}, Sets: [][]string{{"b"}}}, nil)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed forms: status %d", res.StatusCode)
	}
	if code := errCode(t, res); code != "" {
		t.Fatalf("mixed forms: code %q, want empty", code)
	}
	res = doJSON(t, ms.Handler(), http.MethodPost, "/v1/assign", AssignRequest{}, nil)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request: status %d", res.StatusCode)
	}

	// A malformed set inside a batch is a plain 400 naming the offending
	// index, not a mismatch.
	res = doJSON(t, ms.Handler(), http.MethodPost, "/v1/assign", AssignRequest{Sets: [][]string{{"a", "b"}, {}}}, nil)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty set in batch: status %d", res.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "" || e.Error == "" {
		t.Fatalf("empty set in batch: %+v", e)
	}
}
