// Package palid implements PALID, the parallel ALID of Section 4.6
// (Algorithm 3), on top of the in-process MapReduce engine:
//
//   - the task list holds initial vertex indices sampled uniformly (20%) from
//     every LSH bucket with more than 5 members — large buckets betray the
//     dominant clusters;
//   - each map task runs Algorithm 2 independently (no peeling) and emits
//     (data item h, [cluster label L, density D]) for every member;
//   - the reducer assigns each data item to its maximum-density cluster,
//     resolving overlaps exactly as Fig. 5 illustrates.
//
// One core.Detector is kept per executor; the dataset, kernel oracle and LSH
// index are shared read-only, standing in for the paper's MongoDB store.
//
// Task-level fan-out (executors) composes with the intra-detection layer:
// when cfg.Pool is set, every executor's detector additionally parallelizes
// its inner CIVS/LID loops over the shared pool. Executors × pool workers
// goroutines can then be live at once — size the product to the machine.
// Neither axis changes results (executor invariance is tested, and the pool
// is bit-deterministic by construction).
package palid

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"alid/internal/core"
	"alid/internal/index"
	"alid/internal/mapreduce"
	"alid/internal/matrix"
)

// Options controls the parallel run.
type Options struct {
	// Executors is the worker count (paper: 1–8).
	Executors int
	// SampleRate is the per-bucket seed sampling rate (paper: 0.2).
	SampleRate float64
	// MinBucketSize: buckets must exceed this size to contribute seeds
	// (paper: 5).
	MinBucketSize int
	// Seed drives the sampling.
	Seed int64
}

// DefaultOptions mirrors the paper's PALID setup.
func DefaultOptions(executors int) Options {
	return Options{Executors: executors, SampleRate: 0.2, MinBucketSize: 5, Seed: 1}
}

// Result is a completed PALID run.
type Result struct {
	// Clusters passing the density threshold, densest first. Members are the
	// points the reducer assigned to the cluster.
	Clusters []*core.Cluster
	// Assign maps each point to an index into Clusters, or -1.
	Assign []int
	// Seeds is the number of map tasks (sampled initial vertices).
	Seeds int
	// Stats carries engine-level accounting.
	Stats mapreduce.Stats
}

type labelDensity struct {
	label   int // cluster label = seed vertex of the detecting map task
	density float64
}

// Detect flattens the dataset once and runs PALID over it.
func Detect(ctx context.Context, pts [][]float64, cfg core.Config, opts Options) (*Result, error) {
	m, err := matrix.FromRows(pts)
	if err != nil {
		return nil, fmt.Errorf("palid: %w", err)
	}
	return DetectMatrix(ctx, m, cfg, opts)
}

// DetectMatrix runs PALID over a flat dataset.
func DetectMatrix(ctx context.Context, m *matrix.Matrix, cfg core.Config, opts Options) (*Result, error) {
	if opts.Executors <= 0 {
		return nil, fmt.Errorf("palid: Executors must be positive, got %d", opts.Executors)
	}
	if opts.SampleRate <= 0 || opts.SampleRate > 1 {
		opts.SampleRate = 0.2
	}
	if opts.MinBucketSize <= 0 {
		opts.MinBucketSize = 5
	}
	// Shared substrate: one LSH index, one detector per executor.
	first, err := core.NewDetectorMatrix(m, cfg)
	if err != nil {
		return nil, err
	}
	cfg = first.Config()
	index := first.Index()
	detectors := make([]*core.Detector, opts.Executors)
	detectors[0] = first
	for w := 1; w < opts.Executors; w++ {
		d, err := core.NewDetectorMatrixWithIndex(m, cfg, index)
		if err != nil {
			return nil, err
		}
		detectors[w] = d
	}

	seeds := sampleSeeds(index, opts)
	// Cluster metadata collected on the mapper side (label -> cluster).
	var mu sync.Mutex
	bySeed := make(map[int]*core.Cluster, len(seeds))

	mapFn := func(ctx context.Context, executor int, seed int, emit func(int, labelDensity)) error {
		cl, err := detectors[executor].DetectFrom(ctx, seed, nil)
		if err != nil {
			return err
		}
		if cl.Density < cfg.DensityThreshold || cl.Size() < cfg.MinClusterSize {
			return nil // not a dominant cluster; emit nothing
		}
		mu.Lock()
		bySeed[seed] = cl
		mu.Unlock()
		for _, h := range cl.Members {
			emit(h, labelDensity{label: seed, density: cl.Density})
		}
		return nil
	}
	reduceFn := func(_ context.Context, _ int, values []labelDensity) (labelDensity, error) {
		best := values[0]
		for _, v := range values[1:] {
			if v.density > best.density || (v.density == best.density && v.label < best.label) {
				best = v
			}
		}
		return best, nil
	}
	assignments, stats, err := mapreduce.Run(ctx, mapreduce.Config{Executors: opts.Executors}, seeds, mapFn, reduceFn)
	if err != nil {
		return nil, err
	}

	// Suppress duplicate detections: many seeds of one dominant cluster
	// converge to near-identical supports, and letting each compete in the
	// reducer would shatter the cluster into per-label fragments. Greedily
	// keep the densest representative and drop any later detection whose
	// support is mostly (>50%) already claimed; partially overlapping
	// clusters (the Fig. 5 v4 case) stay separate and are still resolved
	// point-wise by the reducer's max-density rule.
	kept := dedupeDetections(bySeed)
	keptCover := make(map[int][]labelDensity)
	for seed, cl := range bySeed {
		if !kept[seed] {
			continue
		}
		for _, h := range cl.Members {
			keptCover[h] = append(keptCover[h], labelDensity{label: seed, density: cl.Density})
		}
	}
	for h, ld := range assignments {
		if kept[ld.label] {
			continue
		}
		best := labelDensity{label: -1}
		for _, cand := range keptCover[h] {
			if best.label == -1 || cand.density > best.density ||
				(cand.density == best.density && cand.label < best.label) {
				best = cand
			}
		}
		if best.label == -1 {
			delete(assignments, h)
		} else {
			assignments[h] = best
		}
	}

	// Assemble final clusters from the reducer's point→label decisions.
	members := make(map[int][]int)
	for h, ld := range assignments {
		members[ld.label] = append(members[ld.label], h)
	}
	labels := make([]int, 0, len(members))
	for l := range members {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	res := &Result{Assign: make([]int, m.N), Seeds: len(seeds), Stats: stats}
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	for _, l := range labels {
		ms := members[l]
		if len(ms) < cfg.MinClusterSize {
			continue
		}
		sort.Ints(ms)
		src := bySeed[l]
		cl := &core.Cluster{
			Members:         ms,
			Density:         src.Density,
			Seed:            l,
			OuterIterations: src.OuterIterations,
			LIDIterations:   src.LIDIterations,
			PeakEntries:     src.PeakEntries,
		}
		res.Clusters = append(res.Clusters, cl)
	}
	sort.Slice(res.Clusters, func(i, j int) bool { return res.Clusters[i].Density > res.Clusters[j].Density })
	for ci, cl := range res.Clusters {
		for _, m := range cl.Members {
			res.Assign[m] = ci
		}
	}
	return res, nil
}

// dedupeDetections keeps, densest first, every detection whose support is
// not already mostly claimed by a kept detection. Returns the kept seeds.
func dedupeDetections(bySeed map[int]*core.Cluster) map[int]bool {
	order := make([]int, 0, len(bySeed))
	for s := range bySeed {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := bySeed[order[i]], bySeed[order[j]]
		if a.Density != b.Density {
			return a.Density > b.Density
		}
		return order[i] < order[j]
	})
	claimed := make(map[int]bool)
	kept := make(map[int]bool, len(order))
	for _, s := range order {
		cl := bySeed[s]
		overlap := 0
		for _, m := range cl.Members {
			if claimed[m] {
				overlap++
			}
		}
		if float64(overlap) > 0.5*float64(len(cl.Members)) {
			continue
		}
		kept[s] = true
		for _, m := range cl.Members {
			claimed[m] = true
		}
	}
	return kept
}

// sampleSeeds draws the PALID task list: SampleRate of the points appearing
// in LSH buckets larger than MinBucketSize (Section 4.6: large buckets betray
// the dominant clusters). Sampling the union rather than every bucket
// independently keeps the task list at ~SampleRate·|candidates| even with
// many tables — per-bucket sampling would re-draw the same cluster from
// every one of its l buckets and blow the task list up to nearly all of it.
func sampleSeeds(index index.Index, opts Options) []int {
	candSet := make(map[int32]bool)
	var cands []int32
	for _, bucket := range index.Buckets(opts.MinBucketSize) {
		for _, id := range bucket {
			if !candSet[id] {
				candSet[id] = true
				cands = append(cands, id)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	want := int(opts.SampleRate * float64(len(cands)))
	if want < 1 && len(cands) > 0 {
		want = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(cands))[:want]
	seeds := make([]int, 0, want)
	for _, p := range perm {
		seeds = append(seeds, int(cands[p]))
	}
	sort.Ints(seeds)
	return seeds
}
