package palid

import (
	"context"
	"testing"

	"alid/internal/affinity"
	"alid/internal/core"
	"alid/internal/eval"
	"alid/internal/lsh"
	"alid/internal/testutil"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Kernel = affinity.Kernel{K: 0.3, P: 2}
	cfg.LSH = lsh.Config{Projections: 6, Tables: 10, R: 4, Seed: 1}
	cfg.Delta = 200
	cfg.DensityThreshold = 0.75
	return cfg
}

func TestDetectBlobs(t *testing.T) {
	pts, labels := testutil.Blobs(11, [][]float64{{0, 0}, {15, 0}, {0, 15}}, 40, 0.3, 40, 0, 15)
	res, err := Detect(context.Background(), pts, testConfig(), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds == 0 {
		t.Fatal("no seeds sampled")
	}
	if len(res.Clusters) < 3 {
		t.Fatalf("clusters = %d, want ≥ 3", len(res.Clusters))
	}
	score := eval.MustScore(labels, res.Assign)
	if score.AVGF < 0.6 {
		t.Fatalf("AVG-F = %v, want ≥ 0.6", score.AVGF)
	}
	if score.NoiseFiltered < 0.8 {
		t.Fatalf("NoiseFiltered = %v, want ≥ 0.8", score.NoiseFiltered)
	}
}

// The reducer must assign overlap points to the densest cluster and the
// assignment must be a partition of the clustered points.
func TestAssignmentConsistent(t *testing.T) {
	pts, _ := testutil.Blobs(13, [][]float64{{0, 0}, {12, 12}}, 30, 0.3, 20, 0, 12)
	res, err := Detect(context.Background(), pts, testConfig(), DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for ci, cl := range res.Clusters {
		for _, m := range cl.Members {
			if prev, dup := seen[m]; dup {
				t.Fatalf("point %d in clusters %d and %d", m, prev, ci)
			}
			seen[m] = ci
			if res.Assign[m] != ci {
				t.Fatalf("Assign[%d] = %d, want %d", m, res.Assign[m], ci)
			}
		}
	}
	for i, a := range res.Assign {
		if a == -1 {
			if _, ok := seen[i]; ok {
				t.Fatalf("point %d assigned and unassigned", i)
			}
		}
	}
}

// PALID's result must be invariant to the executor count (same seeds, same
// deterministic per-seed detection, same reduction).
func TestExecutorCountInvariance(t *testing.T) {
	pts, _ := testutil.Blobs(17, [][]float64{{0, 0}, {10, 10}}, 25, 0.3, 20, 0, 10)
	r1, err := Detect(context.Background(), pts, testConfig(), DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Detect(context.Background(), pts, testConfig(), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seeds != r4.Seeds {
		t.Fatalf("seed lists differ: %d vs %d", r1.Seeds, r4.Seeds)
	}
	if len(r1.Clusters) != len(r4.Clusters) {
		t.Fatalf("cluster counts differ: %d vs %d", len(r1.Clusters), len(r4.Clusters))
	}
	for i := range r1.Assign {
		a, b := r1.Assign[i], r4.Assign[i]
		if (a == -1) != (b == -1) {
			t.Fatalf("point %d: assigned=%v vs %v", i, a != -1, b != -1)
		}
	}
}

func TestSeedsComeFromLargeBuckets(t *testing.T) {
	pts, labels := testutil.Blobs(19, [][]float64{{0, 0}}, 50, 0.3, 5, 20, 30)
	cfg := testConfig()
	det, err := core.NewDetector(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeds := sampleSeeds(det.Index(), DefaultOptions(1))
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	// The blob dominates every big bucket, so most seeds are blob members.
	blob := 0
	for _, s := range seeds {
		if labels[s] == 0 {
			blob++
		}
	}
	if float64(blob)/float64(len(seeds)) < 0.8 {
		t.Fatalf("only %d/%d seeds from the cluster", blob, len(seeds))
	}
}

func TestInvalidOptions(t *testing.T) {
	pts, _ := testutil.Blobs(23, [][]float64{{0, 0}}, 10, 0.3, 0, 0, 1)
	if _, err := Detect(context.Background(), pts, testConfig(), Options{Executors: 0}); err == nil {
		t.Fatal("zero executors accepted")
	}
}

func TestContextCancel(t *testing.T) {
	pts, _ := testutil.Blobs(29, [][]float64{{0, 0}, {9, 9}}, 30, 0.3, 10, 0, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Detect(ctx, pts, testConfig(), DefaultOptions(2)); err == nil {
		t.Fatal("cancelled context should abort")
	}
}
