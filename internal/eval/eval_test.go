package eval

import (
	"math"
	"testing"
)

func TestF1(t *testing.T) {
	if got := F1(5, 5, 5); got != 1 {
		t.Errorf("perfect F1 = %v", got)
	}
	if got := F1(0, 5, 5); got != 0 {
		t.Errorf("empty intersection F1 = %v", got)
	}
	// P = 0.5, R = 1 → F1 = 2/3.
	if got := F1(5, 10, 5); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v, want 2/3", got)
	}
	if F1(0, 0, 0) != 0 {
		t.Error("degenerate F1 should be 0")
	}
}

func TestScorePerfect(t *testing.T) {
	truth := []int{0, 0, 1, 1, -1, -1}
	pred := []int{0, 0, 1, 1, -1, -1}
	r := MustScore(truth, pred)
	if r.AVGF != 1 {
		t.Errorf("AVGF = %v, want 1", r.AVGF)
	}
	if r.NoiseFiltered != 1 {
		t.Errorf("NoiseFiltered = %v, want 1", r.NoiseFiltered)
	}
	if r.PositiveCovered != 1 {
		t.Errorf("PositiveCovered = %v, want 1", r.PositiveCovered)
	}
}

func TestScoreLabelPermutationInvariant(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{7, 7, 2, 2} // different ids, same partition
	// Score infers cluster count from max id; ids need not be dense for
	// correctness of best-match F1.
	r := MustScore(truth, pred)
	if r.AVGF != 1 {
		t.Errorf("AVGF = %v, want 1 under relabeling", r.AVGF)
	}
}

func TestScorePartialMatch(t *testing.T) {
	// GT cluster 0 = {0,1,2,3}; detected cluster 0 = {0,1} → P=1, R=0.5, F1=2/3.
	truth := []int{0, 0, 0, 0}
	pred := []int{0, 0, -1, -1}
	r := MustScore(truth, pred)
	if math.Abs(r.AVGF-2.0/3) > 1e-12 {
		t.Errorf("AVGF = %v, want 2/3", r.AVGF)
	}
	if math.Abs(r.PositiveCovered-0.5) > 1e-12 {
		t.Errorf("PositiveCovered = %v, want 0.5", r.PositiveCovered)
	}
}

func TestScoreBestMatchChoosesBest(t *testing.T) {
	// GT cluster 0 overlaps two detected clusters; the larger-overlap one
	// must define its F1.
	truth := []int{0, 0, 0, 0, 0, 0}
	pred := []int{1, 1, 1, 1, 2, 2}
	r := MustScore(truth, pred)
	want := F1(4, 4, 6)
	if math.Abs(r.AVGF-want) > 1e-12 {
		t.Errorf("AVGF = %v, want %v", r.AVGF, want)
	}
}

func TestScoreNoiseAbsorption(t *testing.T) {
	// A detected cluster that swallows noise loses precision.
	truth := []int{0, 0, -1, -1}
	pred := []int{0, 0, 0, 0}
	r := MustScore(truth, pred)
	want := F1(2, 4, 2)
	if math.Abs(r.AVGF-want) > 1e-12 {
		t.Errorf("AVGF = %v, want %v", r.AVGF, want)
	}
	if r.NoiseFiltered != 0 {
		t.Errorf("NoiseFiltered = %v, want 0", r.NoiseFiltered)
	}
}

func TestScoreMultipleClusters(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{0, 0, -1, -1, 1, 1}
	r := MustScore(truth, pred)
	// Clusters 0 and 2 perfect, cluster 1 missed.
	if math.Abs(r.AVGF-2.0/3) > 1e-12 {
		t.Errorf("AVGF = %v, want 2/3", r.AVGF)
	}
	if r.PerCluster[0] != 1 || r.PerCluster[1] != 0 || r.PerCluster[2] != 1 {
		t.Errorf("PerCluster = %v", r.PerCluster)
	}
	if r.DetectedClusters != 2 {
		t.Errorf("DetectedClusters = %v", r.DetectedClusters)
	}
}

func TestScoreEmptyTruthCluster(t *testing.T) {
	// Label 1 never appears: its PerCluster entry is NaN and it is excluded
	// from the average.
	truth := []int{0, 0, 2, 2}
	pred := []int{0, 0, 1, 1}
	r := MustScore(truth, pred)
	if !math.IsNaN(r.PerCluster[1]) {
		t.Errorf("PerCluster[1] = %v, want NaN", r.PerCluster[1])
	}
	if r.AVGF != 1 {
		t.Errorf("AVGF = %v, want 1", r.AVGF)
	}
}

func TestScoreLengthMismatch(t *testing.T) {
	if _, err := Score([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustScore must panic on mismatch")
		}
	}()
	MustScore([]int{0}, []int{0, 1})
}

func TestScoreAllNoise(t *testing.T) {
	truth := []int{-1, -1, -1}
	pred := []int{-1, 0, -1}
	r := MustScore(truth, pred)
	if r.AVGF != 0 {
		t.Errorf("AVGF = %v for pure-noise truth", r.AVGF)
	}
	if math.Abs(r.NoiseFiltered-2.0/3) > 1e-12 {
		t.Errorf("NoiseFiltered = %v, want 2/3", r.NoiseFiltered)
	}
}
