// Package eval implements the evaluation metrics of Section 5: the Average F1
// score (AVG-F) over ground-truth dominant clusters, plus the noise-filtering
// statistics used for the Fig. 10 qualitative analysis.
//
// AVG-F follows Chen & Saad (TKDE 2012) as the paper does: for every
// ground-truth cluster take the best-matching detected cluster's F1 and
// average over ground-truth clusters. Entropy/NMI are unsuitable because the
// data is only partially clustered (most points are background noise).
package eval

import (
	"fmt"
	"math"
)

// F1 returns the harmonic mean of precision and recall for a detected set of
// size det, a truth set of size truth, and an intersection of size both.
func F1(both, det, truth int) float64 {
	if det == 0 || truth == 0 || both == 0 {
		return 0
	}
	p := float64(both) / float64(det)
	r := float64(both) / float64(truth)
	return 2 * p * r / (p + r)
}

// Result summarizes a detection run against ground truth.
type Result struct {
	// AVGF is the mean best-match F1 over ground-truth clusters.
	AVGF float64
	// PerCluster holds each ground-truth cluster's best F1, indexed by the
	// ground-truth label.
	PerCluster []float64
	// NoiseFiltered is the fraction of ground-truth noise points left
	// unassigned by the detector (higher = better noise resistance).
	NoiseFiltered float64
	// PositiveCovered is the fraction of ground-truth cluster members that
	// were assigned to some detected cluster.
	PositiveCovered float64
	// DetectedClusters is the number of clusters the method reported.
	DetectedClusters int
}

// Score compares a predicted assignment against ground truth. Both slices
// assign each point a cluster id, with negative meaning noise/unassigned.
// The number of ground-truth clusters is inferred from the labels.
func Score(truth, pred []int) (Result, error) {
	if len(truth) != len(pred) {
		return Result{}, fmt.Errorf("eval: truth has %d labels, pred has %d", len(truth), len(pred))
	}
	nTruth := 0
	for _, l := range truth {
		if l >= nTruth {
			nTruth = l + 1
		}
	}
	nPred := 0
	for _, l := range pred {
		if l >= nPred {
			nPred = l + 1
		}
	}
	truthSize := make([]int, nTruth)
	predSize := make([]int, nPred)
	// joint[g] maps predicted id -> overlap count with ground-truth g.
	joint := make([]map[int]int, nTruth)
	for g := range joint {
		joint[g] = make(map[int]int)
	}
	noiseTotal, noiseAssigned := 0, 0
	posTotal, posAssigned := 0, 0
	for i, g := range truth {
		p := pred[i]
		if p >= 0 {
			predSize[p]++
		}
		if g < 0 {
			noiseTotal++
			if p >= 0 {
				noiseAssigned++
			}
			continue
		}
		truthSize[g]++
		posTotal++
		if p >= 0 {
			posAssigned++
			joint[g][p]++
		}
	}
	res := Result{PerCluster: make([]float64, nTruth), DetectedClusters: nPred}
	var sum float64
	counted := 0
	for g := 0; g < nTruth; g++ {
		if truthSize[g] == 0 {
			res.PerCluster[g] = math.NaN()
			continue
		}
		best := 0.0
		for p, both := range joint[g] {
			if f := F1(both, predSize[p], truthSize[g]); f > best {
				best = f
			}
		}
		res.PerCluster[g] = best
		sum += best
		counted++
	}
	if counted > 0 {
		res.AVGF = sum / float64(counted)
	}
	if noiseTotal > 0 {
		res.NoiseFiltered = 1 - float64(noiseAssigned)/float64(noiseTotal)
	} else {
		res.NoiseFiltered = 1
	}
	if posTotal > 0 {
		res.PositiveCovered = float64(posAssigned) / float64(posTotal)
	}
	return res, nil
}

// MustScore is Score for callers with statically valid inputs (tests,
// benchmark harness); it panics on length mismatch.
func MustScore(truth, pred []int) Result {
	r, err := Score(truth, pred)
	if err != nil {
		panic(err)
	}
	return r
}
