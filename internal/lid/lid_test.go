package lid

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"alid/internal/affinity"
	"alid/internal/simplex"
)

func mustOracle(t *testing.T, pts [][]float64, k affinity.Kernel) *affinity.Oracle {
	t.Helper()
	o, err := affinity.NewOracle(pts, k)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// cliquePoints builds a dataset realizing (approximately) a 0/1 affinity
// matrix: `sizes[i]` co-located points per clique, cliques far apart. With a
// sharp kernel, the in-clique affinity is 1 and the cross-clique affinity is
// ~0, so by Motzkin–Straus the maximum subgraph density is 1 − 1/ω where ω is
// the largest clique size.
func cliquePoints(sizes ...int) [][]float64 {
	var pts [][]float64
	for c, sz := range sizes {
		for i := 0; i < sz; i++ {
			pts = append(pts, []float64{float64(c) * 1000, 0})
		}
	}
	return pts
}

func newFullState(t *testing.T, o *affinity.Oracle, seed int) *State {
	t.Helper()
	s, err := NewState(o, seed)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, o.N())
	for i := range all {
		all[i] = i
	}
	s.Extend(all)
	return s
}

func TestNewStateValidation(t *testing.T) {
	o := mustOracle(t, cliquePoints(2), affinity.DefaultKernel())
	if _, err := NewState(o, -1); err == nil {
		t.Error("negative seed accepted")
	}
	if _, err := NewState(o, 99); err == nil {
		t.Error("out-of-range seed accepted")
	}
	s, err := NewState(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Density() != 0 {
		t.Fatalf("fresh state: len=%d π=%v", s.Len(), s.Density())
	}
}

func TestMotzkinStrausDensity(t *testing.T) {
	// Largest clique has 4 vertices → optimal density 1 − 1/4 = 0.75.
	pts := cliquePoints(4, 2, 3)
	o := mustOracle(t, pts, affinity.Kernel{K: 5, P: 2})
	s := newFullState(t, o, 0) // seed inside the size-4 clique
	s.Solve(context.Background(), 1000, 1e-9)
	if got, want := s.Density(), 0.75; math.Abs(got-want) > 1e-6 {
		t.Fatalf("converged density = %v, want %v", got, want)
	}
	sup := s.Support()
	if len(sup) != 4 {
		t.Fatalf("support = %v, want the 4-clique", sup)
	}
	for _, i := range sup {
		if i >= 4 {
			t.Fatalf("support contains non-clique vertex %d", i)
		}
	}
}

func TestSeedInSmallerCliqueStaysLocal(t *testing.T) {
	// Seeding in the 3-clique: LID converges to the local optimum of that
	// clique (density 1 − 1/3) because the 4-clique is not infective against
	// it (cross affinities ~0).
	pts := cliquePoints(4, 3)
	o := mustOracle(t, pts, affinity.Kernel{K: 5, P: 2})
	s := newFullState(t, o, 5)
	s.Solve(context.Background(), 1000, 1e-9)
	if got, want := s.Density(), 1-1.0/3; math.Abs(got-want) > 1e-6 {
		t.Fatalf("density = %v, want %v", got, want)
	}
}

func TestDensityMonotonicallyIncreases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 3, rng.Float64() * 3}
	}
	o := mustOracle(t, pts, affinity.Kernel{K: 1, P: 2})
	s := newFullState(t, o, 7)
	prev := s.Density()
	for iter := 0; iter < 500; iter++ {
		if !s.Step(1e-9) {
			break
		}
		cur := s.Density()
		if cur < prev-1e-9 {
			t.Fatalf("density decreased at iter %d: %v -> %v", iter, prev, cur)
		}
		prev = cur
	}
}

// At convergence the KKT conditions of the StQP (Eq. 3) must hold: no vertex
// has payoff above π(x)+tol, and support vertices have payoff ≈ π(x).
func TestConvergenceKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 60)
	for i := range pts {
		c := float64(i % 3)
		pts[i] = []float64{c*8 + rng.NormFloat64()*0.5, c*8 + rng.NormFloat64()*0.5}
	}
	o := mustOracle(t, pts, affinity.Kernel{K: 1, P: 2})
	s := newFullState(t, o, 0)
	s.Solve(context.Background(), 5000, 1e-9)
	pi := s.Density()
	for p, gidx := range s.Beta() {
		r, ok := s.PayoffOf(gidx)
		if !ok {
			t.Fatalf("beta vertex %d not found", gidx)
		}
		if r > 1e-6 {
			t.Errorf("infective vertex %d survives convergence: payoff %v", gidx, r)
		}
		if s.x[p] > simplex.WeightEps && math.Abs(r) > 1e-6 {
			t.Errorf("support vertex %d payoff %v ≠ 0", gidx, r)
		}
	}
	if pi <= 0 {
		t.Fatalf("π = %v, want > 0", pi)
	}
	if err := s.Sanity(); err != nil {
		t.Fatal(err)
	}
}

func TestSanityAfterManySteps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 30)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	o := mustOracle(t, pts, affinity.Kernel{K: 2, P: 2})
	s := newFullState(t, o, 4)
	for i := 0; i < 50; i++ {
		if !s.Step(1e-10) {
			break
		}
		if err := s.Sanity(); err != nil {
			t.Fatalf("after step %d: %v", i, err)
		}
	}
}

func TestExtendIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	o := mustOracle(t, pts, affinity.Kernel{K: 1, P: 2})
	s, err := NewState(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the range in chunks, solving in between — the ALID usage pattern.
	for lo := 1; lo < 50; lo += 10 {
		hi := lo + 10
		if hi > 50 {
			hi = 50
		}
		chunk := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			chunk = append(chunk, i)
		}
		added := s.Extend(chunk)
		if added != hi-lo {
			t.Fatalf("Extend added %d, want %d", added, hi-lo)
		}
		if err := s.Sanity(); err != nil {
			t.Fatalf("sanity after extend to %d: %v", hi, err)
		}
		s.Solve(context.Background(), 500, 1e-9)
		if err := s.Sanity(); err != nil {
			t.Fatalf("sanity after solve at %d: %v", hi, err)
		}
	}
	// Duplicate extension is a no-op.
	if s.Extend([]int{3, 4, 5}) != 0 {
		t.Fatal("re-extending existing indices must add nothing")
	}
}

func TestImmune(t *testing.T) {
	pts := cliquePoints(3, 3)
	o := mustOracle(t, pts, affinity.Kernel{K: 5, P: 2})
	s, err := NewState(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Extend([]int{1, 2})
	s.Solve(context.Background(), 200, 1e-9)
	// Vertices of the far clique are non-infective; in-clique vertices are
	// already in β and converged.
	if !s.Immune([]int{3, 4, 5}, 1e-7) {
		t.Error("far clique should not be infective")
	}
	// A co-located vertex (same position as the converged clique) IS
	// infective against a partially-converged subgraph with lower density.
	s2, _ := NewState(o, 0)
	s2.Extend([]int{1})
	s2.Solve(context.Background(), 200, 1e-9) // density 1/2 on the pair
	if s2.Immune([]int{2}, 1e-7) {
		t.Error("third clique member must be infective against the pair")
	}
}

func TestColumnsBoundedBySupport(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([][]float64, 80)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
	}
	o := mustOracle(t, pts, affinity.Kernel{K: 1, P: 2})
	s := newFullState(t, o, 0)
	s.Solve(context.Background(), 2000, 1e-9)
	s.Extend(nil) // triggers non-support column cleanup
	sup := s.Support()
	if got := len(s.cols); got > len(sup) {
		t.Fatalf("cached columns %d > support size %d", got, len(sup))
	}
	if s.PeakEntries() <= 0 {
		t.Fatal("peak entries not tracked")
	}
	if s.CachedEntries() > s.PeakEntries() {
		t.Fatal("peak below current")
	}
}

func TestSingletonConverges(t *testing.T) {
	pts := [][]float64{{0, 0}, {100, 100}}
	o := mustOracle(t, pts, affinity.Kernel{K: 5, P: 2})
	s, err := NewState(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Step(1e-9) {
		t.Error("singleton should be immediately converged")
	}
	if s.Density() != 0 {
		t.Errorf("singleton density = %v", s.Density())
	}
	if n, err := s.Solve(context.Background(), 10, 1e-9); n != 0 || err != nil {
		t.Errorf("Solve on singleton: %d iterations, err %v", n, err)
	}
}

func TestIterationsCounter(t *testing.T) {
	pts := cliquePoints(5)
	o := mustOracle(t, pts, affinity.Kernel{K: 5, P: 2})
	s := newFullState(t, o, 0)
	n, err := s.Solve(context.Background(), 100, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || s.Iterations() != n {
		t.Fatalf("Solve=%d Iterations=%d", n, s.Iterations())
	}
}

// Weights inside a symmetric clique must converge to uniform.
func TestUniformWeightsOnClique(t *testing.T) {
	pts := cliquePoints(6)
	o := mustOracle(t, pts, affinity.Kernel{K: 3, P: 2})
	s := newFullState(t, o, 2)
	s.Solve(context.Background(), 1000, 1e-10)
	_, w := s.SupportWeights()
	if len(w) != 6 {
		t.Fatalf("support size = %d, want 6", len(w))
	}
	for _, wi := range w {
		if math.Abs(wi-1.0/6) > 1e-6 {
			t.Fatalf("non-uniform clique weights: %v", w)
		}
	}
}

func BenchmarkLIDSolve200(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pts := make([][]float64, 200)
	for i := range pts {
		c := float64(i % 4)
		pts[i] = []float64{c*6 + rng.NormFloat64()*0.4, c*6 + rng.NormFloat64()*0.4}
	}
	o, _ := affinity.NewOracle(pts, affinity.Kernel{K: 1, P: 2})
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := NewState(o, 0)
		s.Extend(all)
		s.Solve(context.Background(), 2000, 1e-8)
	}
}

// A pre-cancelled context must abort Solve before the first iteration, even
// with a MaxLID-sized budget: the inner loop polls the context (amortized),
// so a cancelled detection cannot pin a core for thousands of iterations.
func TestSolvePreCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	o := mustOracle(t, pts, affinity.Kernel{K: 1, P: 2})
	s := newFullState(t, o, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := s.Solve(ctx, 1<<20, 1e-12)
	if err == nil {
		t.Fatal("Solve ignored a pre-cancelled context")
	}
	if n != 0 {
		t.Fatalf("Solve ran %d iterations under a pre-cancelled context", n)
	}
	if s.Iterations() != 0 {
		t.Fatalf("state advanced %d iterations under a pre-cancelled context", s.Iterations())
	}
}

// lateCancelCtx cancels itself after a fixed number of Err calls — a
// deterministic stand-in for "the caller cancels mid-solve".
type lateCancelCtx struct {
	context.Context
	calls, after int
}

func (c *lateCancelCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// Cancellation arriving mid-solve must stop the loop at the next amortized
// check (within cancelCheckEvery iterations), not run the budget dry.
func TestSolveCancelledMidway(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := make([][]float64, 300)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}
	}
	o := mustOracle(t, pts, affinity.Kernel{K: 1, P: 2})
	s := newFullState(t, o, 0)
	ctx := &lateCancelCtx{Context: context.Background(), after: 2}
	n, err := s.Solve(ctx, 1<<20, 1e-15)
	if err == nil {
		t.Skip("solve converged before the cancellation point; fixture too easy")
	}
	// Err turns non-nil at the 3rd check, i.e. after at most 2·cancelCheckEvery
	// completed iterations.
	if n > 2*cancelCheckEvery {
		t.Fatalf("Solve ran %d iterations past a mid-solve cancellation (check cadence %d)", n, cancelCheckEvery)
	}
}
