package lid

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"alid/internal/affinity"
	"alid/internal/simplex"
)

// Property: under ANY interleaving of Extend and Solve over random data, the
// LID state keeps its invariants — x on the simplex, g consistent with the
// cached columns, density never decreasing across a solve.
func TestRandomInterleavingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		}
		o, err := affinity.NewOracle(pts, affinity.Kernel{K: 0.5 + rng.Float64(), P: 2})
		if err != nil {
			return false
		}
		s, err := NewState(o, rng.Intn(n))
		if err != nil {
			return false
		}
		remaining := rng.Perm(n)
		for len(remaining) > 0 {
			take := 1 + rng.Intn(len(remaining))
			s.Extend(remaining[:take])
			remaining = remaining[take:]
			before := s.Density()
			s.Solve(context.Background(), 200, 1e-9)
			if s.Density() < before-1e-9 {
				return false
			}
			if err := s.Sanity(); err != nil {
				return false
			}
		}
		return simplex.IsMember(s.x, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the invasion share ε computed in Step always lies in [0,1] and a
// Step never pushes any weight negative beyond clamping dust.
func TestStepKeepsWeightsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		}
		o, err := affinity.NewOracle(pts, affinity.Kernel{K: 1, P: 2})
		if err != nil {
			return false
		}
		s, err := NewState(o, 0)
		if err != nil {
			return false
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		s.Extend(all)
		for it := 0; it < 100; it++ {
			if !s.Step(1e-10) {
				break
			}
			for _, xi := range s.x {
				if xi < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: support weights always sum to 1 and match Weight() accessors.
func TestSupportAccessorsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := make([][]float64, 25)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	o, err := affinity.NewOracle(pts, affinity.Kernel{K: 1, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewState(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	s.Extend(all)
	s.Solve(context.Background(), 500, 1e-9)
	sup, w := s.SupportWeights()
	var sum float64
	for i, gidx := range sup {
		sum += w[i]
		if got := s.Weight(gidx); got != w[i] {
			t.Fatalf("Weight(%d) = %v, want %v", gidx, got, w[i])
		}
		if !s.Contains(gidx) {
			t.Fatalf("support member %d not Contains()", gidx)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("support weights sum to %v", sum)
	}
	if s.Contains(999) {
		t.Fatal("Contains(999) on 25-point graph")
	}
	if s.Weight(999) != 0 {
		t.Fatal("Weight of absent vertex must be 0")
	}
}
