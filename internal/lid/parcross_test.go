package lid

import (
	"context"
	"math/rand"
	"testing"

	"alid/internal/affinity"
	"alid/internal/par"
)

// lowerParGates forces every parallel path in this package onto small
// fixtures (a 32-position step grain makes even a 260-vertex β fan out),
// restoring the production gates when the test ends. Gates affect only
// scheduling, never values — which is exactly what these crosschecks prove.
func lowerParGates(t *testing.T) {
	t.Helper()
	t.Cleanup(SetParGatesForTest(32, 64, 8, 8))
}

// runScript drives one State through the ALID usage pattern — extend in
// chunks, solve in between, immunity checks against outside vertices — and
// returns the final state for comparison.
func runScript(t *testing.T, o *affinity.Oracle, pool *par.Pool) (*State, []bool) {
	t.Helper()
	s, err := NewState(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPool(pool)
	n := o.N()
	var immunities []bool
	for lo := 1; lo < n; lo += 40 {
		hi := min(lo+40, n)
		chunk := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			chunk = append(chunk, i)
		}
		s.Extend(chunk)
		if _, err := s.Solve(context.Background(), 500, 1e-9); err != nil {
			t.Fatal(err)
		}
		// Immunity against the not-yet-extended tail. The window must reach
		// 2·immuneGrain candidates (a const the gate hook cannot lower) or
		// the parallel scan never engages and this compares serial to serial.
		var outside []int
		for i := hi; i < min(hi+4*immuneGrain, n); i++ {
			outside = append(outside, i)
		}
		if len(outside) >= 2*immuneGrain {
			immunities = append(immunities, s.Immune(outside, 1e-7))
		}
	}
	if _, err := s.Solve(context.Background(), 2000, 1e-10); err != nil {
		t.Fatal(err)
	}
	return s, immunities
}

// The full LID state — β order, weights, g, cached columns, density — must
// be bit-identical between the serial path and any pool width: vertex
// selection reduces per-chunk winners in chunk order, Extend merges tails in
// sorted column order, and column fills are chunk-invariant.
func TestLIDCrosscheckSerialVsPool(t *testing.T) {
	lowerParGates(t)
	rng := rand.New(rand.NewSource(9))
	pts := make([][]float64, 260)
	for i := range pts {
		c := float64(i % 3)
		pts[i] = []float64{c*6 + rng.NormFloat64()*0.8, c*6 + rng.NormFloat64()*0.8, rng.NormFloat64() * 0.5}
	}
	o := mustOracle(t, pts, affinity.Kernel{K: 1, P: 2})

	serial, serialImm := runScript(t, o, nil)
	if len(serialImm) == 0 {
		t.Fatal("no immunity checks reached the parallel-scan size — crosscheck is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got, gotImm := runScript(t, o, par.New(workers))
		if got.Len() != serial.Len() || got.Iterations() != serial.Iterations() {
			t.Fatalf("workers=%d: len/iters %d/%d, serial %d/%d", workers, got.Len(), got.Iterations(), serial.Len(), serial.Iterations())
		}
		if got.Density() != serial.Density() {
			t.Fatalf("workers=%d: density %v != serial %v", workers, got.Density(), serial.Density())
		}
		for p := range serial.beta {
			if got.beta[p] != serial.beta[p] {
				t.Fatalf("workers=%d: beta[%d] = %d, serial %d", workers, p, got.beta[p], serial.beta[p])
			}
			if got.x[p] != serial.x[p] {
				t.Fatalf("workers=%d: x[%d] = %v, serial %v", workers, p, got.x[p], serial.x[p])
			}
			if got.g[p] != serial.g[p] {
				t.Fatalf("workers=%d: g[%d] = %v, serial %v", workers, p, got.g[p], serial.g[p])
			}
		}
		if len(got.cols) != len(serial.cols) {
			t.Fatalf("workers=%d: %d cached columns, serial %d", workers, len(got.cols), len(serial.cols))
		}
		for idx, sc := range serial.cols {
			gc, ok := got.cols[idx]
			if !ok || len(gc) != len(sc) {
				t.Fatalf("workers=%d: column %d missing or mis-sized", workers, idx)
			}
			for r := range sc {
				if gc[r] != sc[r] {
					t.Fatalf("workers=%d: column %d row %d = %v, serial %v", workers, idx, r, gc[r], sc[r])
				}
			}
		}
		if len(gotImm) != len(serialImm) {
			t.Fatalf("workers=%d: %d immunity verdicts, serial %d", workers, len(gotImm), len(serialImm))
		}
		for i := range serialImm {
			if gotImm[i] != serialImm[i] {
				t.Fatalf("workers=%d: immunity verdict %d = %v, serial %v", workers, i, gotImm[i], serialImm[i])
			}
		}
		if err := got.Sanity(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}
