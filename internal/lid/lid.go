// Package lid implements Localized Infection Immunization Dynamics, Step 1 of
// ALID (Section 4.1, Algorithm 1 of the paper).
//
// LID runs the infection-immunization game restricted to a local range β of
// the global affinity graph, maintaining the invariant pair
//
//	[ x , g = A_{βα}·x_α ]
//
// where α = supp(x). Each iteration selects the vertex with the strongest
// payoff deviation (Eq. 6/8), computes the optimal invasion share (Eq. 9) and
// updates both x (Eq. 13) and g (Eq. 14) in O(|β|) time. Only the columns
// A_{βi} that are actually touched are ever computed (the green parts of
// Fig. 3), which is what removes the O(n²) affinity-matrix cost.
package lid

import (
	"context"
	"fmt"
	"math"
	"sort"

	"alid/internal/affinity"
	"alid/internal/par"
	"alid/internal/simplex"
)

// DefaultTolerance is the payoff-deviation threshold below which the local
// subgraph is declared immune against every vertex in β (γ_β(x) = ∅ up to
// numerics, Theorem 1).
const DefaultTolerance = 1e-7

// State is the LID working state over a dynamically grown local range.
type State struct {
	oracle *affinity.Oracle
	pool   *par.Pool // intra-detection fan-out; nil = serial

	beta []int       // global indices of the local range, order fixed
	pos  map[int]int // global index -> position in beta

	x []float64 // vertex weights over beta positions (a point of Δ^|β|)
	g []float64 // g[r] = Σ_{i∈α} a_{beta[r],beta[i]}·x[i]

	cols map[int][]float64 // global column index -> column over beta rows

	// per-chunk scratch of the parallel paths (argmax partials, Extend tail
	// slab, Immune chunk flags), reused across iterations
	argBest []int
	argAbs  []float64
	argR    []float64
	tails   []float64
	infect  []bool

	peakEntries int // high-water mark of cached submatrix entries
	iterations  int // total LID iterations performed
}

// SetPool injects the intra-detection parallel pool. A nil pool (the
// default) keeps every scan serial. The pool only changes how the fixed
// chunks of each scan are scheduled, never what they compute: all results
// stay bit-identical to the serial path (see package par).
func (s *State) SetPool(p *par.Pool) { s.pool = p }

// NewState starts Algorithm 2's initialization: β = α = {seed}, x = s_seed,
// A_{βα}x_α = a_ss = 0.
func NewState(o *affinity.Oracle, seed int) (*State, error) {
	if seed < 0 || seed >= o.N() {
		return nil, fmt.Errorf("lid: seed %d out of range [0,%d)", seed, o.N())
	}
	s := &State{
		oracle: o,
		beta:   []int{seed},
		pos:    map[int]int{seed: 0},
		x:      []float64{1},
		g:      []float64{0},
		cols:   map[int][]float64{seed: {0}},
	}
	s.trackPeak()
	return s, nil
}

// Beta returns the local range as global indices (aliases internal storage).
func (s *State) Beta() []int { return s.beta }

// Contains reports whether the global index is already in the local range β.
func (s *State) Contains(global int) bool {
	_, ok := s.pos[global]
	return ok
}

// Weight returns the current weight of a global index (0 if outside β).
func (s *State) Weight(global int) float64 {
	p, ok := s.pos[global]
	if !ok {
		return 0
	}
	return s.x[p]
}

// Len returns b = |β|.
func (s *State) Len() int { return len(s.beta) }

// Iterations returns the total number of LID iterations performed so far.
func (s *State) Iterations() int { return s.iterations }

// PeakEntries returns the high-water mark of cached A_{βα} entries, the
// quantity bounded by a*(a*+δ) in Section 4.5.
func (s *State) PeakEntries() int { return s.peakEntries }

// Density returns π(x) = Σ_{i∈α} x_i·g_i (Eq. 2 restricted to β).
func (s *State) Density() float64 {
	var pi float64
	for i, xi := range s.x {
		if xi > 0 {
			pi += xi * s.g[i]
		}
	}
	return pi
}

// Support returns the global indices with positive weight.
func (s *State) Support() []int {
	var out []int
	for i, xi := range s.x {
		if xi > simplex.WeightEps {
			out = append(out, s.beta[i])
		}
	}
	return out
}

// SupportWeights returns parallel slices of global indices and their weights,
// the (members, memberships) pair that defines the detected subgraph.
func (s *State) SupportWeights() ([]int, []float64) {
	var idx []int
	var w []float64
	for i, xi := range s.x {
		if xi > simplex.WeightEps {
			idx = append(idx, s.beta[i])
			w = append(w, xi)
		}
	}
	return idx, w
}

// Payoff returns π(s_j − x, x) = g_j − π(x) for the local position p.
func (s *State) payoff(p int, pi float64) float64 { return s.g[p] - pi }

// PayoffOf returns π(s_j − x, x) for a global index already in β, and false
// if the index is not in the local range.
func (s *State) PayoffOf(global int) (float64, bool) {
	p, ok := s.pos[global]
	if !ok {
		return 0, false
	}
	return s.payoff(p, s.Density()), true
}

// column returns the affinity column A_{β,global}, computing and caching it
// on first use (the dashed green column of Fig. 3). The fill fans out over
// the pool in fixed row chunks for large β.
func (s *State) column(global int) []float64 {
	if c, ok := s.cols[global]; ok {
		return c
	}
	c := make([]float64, len(s.beta))
	s.oracle.ColumnPar(s.pool, global, s.beta, c)
	s.cols[global] = c
	s.trackPeak()
	return c
}

// stepGrain is the chunk size of the parallel vertex-selection scan and
// stepParMin the minimum |β| before it fans out. The per-position work is a
// handful of float operations, so fan-out only pays off for local ranges
// well past a chunk. These (and the gates below) are variables only so
// crosscheck tests can force the parallel paths on small fixtures; every
// per-chunk reduction here is chunking-invariant by construction, so they
// affect speed, never results.
var (
	stepGrain  = 4096
	stepParMin = 2 * 4096
)

// SetParGatesForTest overrides the fan-out grains/gates (crosscheck tests
// engage every parallel path on small fixtures with it) and returns a
// restore function. Results are identical at any setting; only scheduling
// changes. Test-only.
func SetParGatesForTest(stepGrainN, stepMin, extendMin, immuneMin int) func() {
	oldG, oldS, oldE, oldI := stepGrain, stepParMin, extendParMin, immuneParMin
	stepGrain, stepParMin, extendParMin, immuneParMin = stepGrainN, stepMin, extendMin, immuneMin
	return func() { stepGrain, stepParMin, extendParMin, immuneParMin = oldG, oldS, oldE, oldI }
}

// selectVertex runs the Eq. 6 argmax over positions [lo,hi): the strongest
// payoff deviation over C1 ∪ C2, first position winning ties (the serial
// scan's strictly-greater rule). Returns best = -1 when no deviation in the
// range exceeds tol.
func (s *State) selectVertex(lo, hi int, pi, tol float64) (best int, bestAbs, bestR float64) {
	best, bestAbs = -1, tol
	for p := lo; p < hi; p++ {
		r := s.g[p] - pi
		switch {
		case r > 0: // C1: infective vertex
			if r > bestAbs {
				best, bestAbs, bestR = p, r, r
			}
		case r < 0 && s.x[p] > simplex.WeightEps: // C2: weak member vertex
			if -r > bestAbs {
				best, bestAbs, bestR = p, -r, r
			}
		}
	}
	return best, bestAbs, bestR
}

// Step performs one LID iteration (Algorithm 1). It returns false when x is
// already immune against every vertex in β up to tol, i.e. γ_β(x) = ∅.
func (s *State) Step(tol float64) bool {
	pi := s.Density()

	// Vertex selection, Eq. 6: argmax |π(s_i − x, x)| over C1 ∪ C2. For a
	// large β the scan runs as fixed chunks with per-chunk partial winners,
	// reduced serially in ascending chunk order — each chunk applies the same
	// first-wins tie rule, so the selected vertex is identical to the serial
	// scan at any worker count.
	var best int
	var bestAbs, bestR float64
	if n := len(s.beta); s.pool.Parallel() && n >= stepParMin {
		chunks := par.NumChunks(n, stepGrain)
		if cap(s.argBest) < chunks {
			s.argBest = make([]int, chunks)
			s.argAbs = make([]float64, chunks)
			s.argR = make([]float64, chunks)
		}
		cBest, cAbs, cR := s.argBest[:chunks], s.argAbs[:chunks], s.argR[:chunks]
		s.pool.ForChunks(n, stepGrain, func(c, lo, hi int) {
			cBest[c], cAbs[c], cR[c] = s.selectVertex(lo, hi, pi, tol)
		})
		best, bestAbs = -1, tol
		for c := 0; c < chunks; c++ {
			if cBest[c] >= 0 && cAbs[c] > bestAbs {
				best, bestAbs, bestR = cBest[c], cAbs[c], cR[c]
			}
		}
	} else {
		best, bestAbs, bestR = s.selectVertex(0, n, pi, tol)
	}
	if best < 0 {
		return false
	}
	s.iterations++

	col := s.column(s.beta[best])
	// π(s_i − x) = a_ii − 2g_i + π(x) with a_ii = 0 (Eq. 11).
	piDiff := -2*s.g[best] + pi

	if bestR > 0 {
		// Infection with y = s_i.
		eps := simplex.InvasionShare(bestR, piDiff)
		simplex.InvadeVertex(s.x, best, eps)
		// Eq. 14: g ← g + ε(A_{βi} − g).
		for r := range s.g {
			s.g[r] += eps * (col[r] - s.g[r])
		}
	} else {
		// Immunization with the co-vertex y = s_i(x) (Eq. 7/12).
		mu := simplex.CoVertexFactor(s.x[best])
		num := mu * bestR       // π(s_i(x) − x, x) > 0
		den := mu * mu * piDiff // π(s_i(x) − x)
		eps := simplex.InvasionShare(num, den)
		simplex.InvadeCoVertex(s.x, best, eps)
		f := eps * mu
		for r := range s.g {
			s.g[r] += f * (col[r] - s.g[r])
		}
	}
	// Keep x numerically on the simplex; dust below WeightEps is removed so
	// the support (and hence peeling and the ROI) stays exact.
	simplex.Clamp(s.x)
	return true
}

// cancelCheckEvery is the amortized cadence of context checks inside Solve:
// one ctx.Err() load per this many LID iterations. An iteration is O(|β|)
// (microseconds), so cancellation latency stays well under a millisecond
// while the check cost is invisible; a pre-cancelled context is caught
// before the first iteration.
const cancelCheckEvery = 64

// Solve iterates Step until convergence, maxIter iterations, or context
// cancellation, returning the number of iterations executed. This is the
// "repeat Algorithm 1 until γ_β(x) = ∅ or t > T" loop of Section 4.1. The
// context is polled every cancelCheckEvery iterations so a MaxLID-sized
// budget cannot pin a cancelled detection; on cancellation the state remains
// valid (every completed Step left x on the simplex) but the returned error
// is non-nil and the solve is incomplete.
func (s *State) Solve(ctx context.Context, maxIter int, tol float64) (int, error) {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	n := 0
	for n < maxIter {
		if n%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		if !s.Step(tol) {
			break
		}
		n++
	}
	return n, nil
}

// Extend grows the local range with new global indices (the CIVS update
// β ← α ∪ ψ of Eq. 17): cached support columns gain rows for the new
// vertices, x gains zero weights, and g gains the rows (A_{ψα}x̂_α).
// Indices already in β are ignored. Columns cached for vertices that have
// left the support are dropped, keeping the cache within the a*(a*+δ) space
// bound of Section 4.5.
func (s *State) Extend(newGlobal []int) int {
	var fresh []int
	for _, gidx := range newGlobal {
		if _, ok := s.pos[gidx]; !ok {
			fresh = append(fresh, gidx)
		}
	}
	if len(fresh) == 0 {
		s.dropNonSupportColumns()
		return 0
	}
	oldLen := len(s.beta)
	for _, gidx := range fresh {
		s.pos[gidx] = len(s.beta)
		s.beta = append(s.beta, gidx)
		s.x = append(s.x, 0)
		s.g = append(s.g, 0)
	}
	s.dropNonSupportColumns()
	// Extend the retained (support) columns with the new rows and accumulate
	// the new g entries: g_j = Σ_{i∈α} a_{j,i}·x_i for j ∈ ψ. Columns are
	// processed in sorted order: map-order iteration would make the
	// floating-point accumulation order (and hence tie-breaking in later
	// vertex selections) run-dependent.
	colIdxs := make([]int, 0, len(s.cols))
	for colIdx := range s.cols {
		colIdxs = append(colIdxs, colIdx)
	}
	sort.Ints(colIdxs)
	// Phase 1 — fill: the A_{ψα} tail rows of every retained column land in a
	// per-column slab slot (chunk-owned writes, one column per chunk), so the
	// submatrix materialization fans out over the pool. Each slot's entries
	// depend only on its own (column, row) pairs — the slab content is
	// bit-identical however the chunks are scheduled.
	nf := len(fresh)
	if need := len(colIdxs) * nf; cap(s.tails) < need {
		s.tails = make([]float64, need)
	}
	tails := s.tails[:len(colIdxs)*nf]
	newRows := s.beta[oldLen:]
	fill := func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			s.oracle.Column(colIdxs[ci], newRows, tails[ci*nf:(ci+1)*nf])
		}
	}
	if s.pool.Parallel() && len(colIdxs) > 1 && len(colIdxs)*nf >= extendParMin {
		s.pool.ForChunks(len(colIdxs), 1, func(_, lo, hi int) { fill(lo, hi) })
	} else {
		fill(0, len(colIdxs))
	}
	// Phase 2 — merge, serial: append each tail to its cached column and
	// accumulate g in ascending column order, the exact floating-point order
	// of the pre-parallel implementation.
	for ci, colIdx := range colIdxs {
		tail := tails[ci*nf : (ci+1)*nf]
		s.cols[colIdx] = append(s.cols[colIdx], tail...)
		xi := s.x[s.pos[colIdx]]
		if xi > 0 {
			for r := range tail {
				s.g[oldLen+r] += xi * tail[r]
			}
		}
	}
	s.trackPeak()
	return len(fresh)
}

// extendParMin is the minimum tail-slab size (in kernel evaluations) before
// Extend's fill fans out; below it the spawn cost outweighs the work.
var extendParMin = 2048

// dropNonSupportColumns releases cached columns for vertices outside the
// current support. Support columns must be kept: they are exactly A_{βα}.
func (s *State) dropNonSupportColumns() {
	for colIdx := range s.cols {
		if s.x[s.pos[colIdx]] <= simplex.WeightEps {
			delete(s.cols, colIdx)
		}
	}
}

// CachedEntries returns the current number of cached submatrix entries.
func (s *State) CachedEntries() int {
	n := 0
	for _, c := range s.cols {
		n += len(c)
	}
	return n
}

func (s *State) trackPeak() {
	if n := s.CachedEntries(); n > s.peakEntries {
		s.peakEntries = n
	}
}

// immuneGrain is the candidate-chunk size of the parallel immunity scan;
// each candidate costs O(|α|) kernel evaluations, so chunks stay small.
const immuneGrain = 32

// immuneParMin is the minimum candidate·support product before the immunity
// scan fans out.
var immuneParMin = 1 << 14

// Immune reports whether x is immune (payoff ≤ tol) against every vertex of
// the given global index set. Indices outside β are evaluated directly from
// the oracle in O(|α|) each without growing the cache: π(s_j, x) = Σ a_ji x_i.
//
// For large candidate sets the scan fans out in fixed chunks, each chunk
// recording an "infective found" flag in its own slot and stopping early
// within its own range only; the verdict is the OR of the flags, read in
// chunk order. The boolean answer is identical to the serial scan. The
// kernel-evaluation COUNT can exceed the serial scan's (chunks past the
// first infective candidate still run), but it is the same at every worker
// count, because which chunks scan which candidates is fixed.
func (s *State) Immune(candidates []int, tol float64) bool {
	pi := s.Density()
	sup, w := s.SupportWeights()
	infective := func(gidx int) bool {
		if p, ok := s.pos[gidx]; ok {
			return s.payoff(p, pi) > tol
		}
		var gj float64
		for t, i := range sup {
			gj += w[t] * s.oracle.At(gidx, i)
		}
		return gj-pi > tol
	}
	if s.pool.Parallel() && len(candidates) >= 2*immuneGrain && len(candidates)*len(sup) >= immuneParMin {
		chunks := par.NumChunks(len(candidates), immuneGrain)
		if cap(s.infect) < chunks {
			s.infect = make([]bool, chunks)
		}
		flags := s.infect[:chunks]
		s.pool.ForChunks(len(candidates), immuneGrain, func(c, lo, hi int) {
			found := false
			for _, gidx := range candidates[lo:hi] {
				if infective(gidx) {
					found = true
					break
				}
			}
			flags[c] = found
		})
		for _, f := range flags {
			if f {
				return false
			}
		}
		return true
	}
	for _, gidx := range candidates {
		if infective(gidx) {
			return false
		}
	}
	return true
}

// Sanity verifies internal invariants (x on simplex, g consistent with the
// cached columns). It is O(|β|·|α|) and intended for tests and debugging.
func (s *State) Sanity() error {
	if !simplex.IsMember(s.x, 1e-6) {
		return fmt.Errorf("lid: x off simplex (sum=%v)", sum(s.x))
	}
	for p, gidx := range s.beta {
		if s.pos[gidx] != p {
			return fmt.Errorf("lid: pos map inconsistent at %d", p)
		}
	}
	// Recompute g from scratch and compare.
	want := make([]float64, len(s.beta))
	for p, xi := range s.x {
		if xi <= 0 {
			continue
		}
		for r, rg := range s.beta {
			if r == p {
				continue
			}
			want[r] += xi * s.oracle.Kernel.Affinity(s.oracle.Point(rg), s.oracle.Point(s.beta[p]))
		}
	}
	for r := range want {
		if math.Abs(want[r]-s.g[r]) > 1e-6 {
			return fmt.Errorf("lid: g[%d] = %v, want %v", r, s.g[r], want[r])
		}
	}
	return nil
}

func sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}
