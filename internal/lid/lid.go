// Package lid implements Localized Infection Immunization Dynamics, Step 1 of
// ALID (Section 4.1, Algorithm 1 of the paper).
//
// LID runs the infection-immunization game restricted to a local range β of
// the global affinity graph, maintaining the invariant pair
//
//	[ x , g = A_{βα}·x_α ]
//
// where α = supp(x). Each iteration selects the vertex with the strongest
// payoff deviation (Eq. 6/8), computes the optimal invasion share (Eq. 9) and
// updates both x (Eq. 13) and g (Eq. 14) in O(|β|) time. Only the columns
// A_{βi} that are actually touched are ever computed (the green parts of
// Fig. 3), which is what removes the O(n²) affinity-matrix cost.
package lid

import (
	"fmt"
	"math"
	"sort"

	"alid/internal/affinity"
	"alid/internal/simplex"
)

// DefaultTolerance is the payoff-deviation threshold below which the local
// subgraph is declared immune against every vertex in β (γ_β(x) = ∅ up to
// numerics, Theorem 1).
const DefaultTolerance = 1e-7

// State is the LID working state over a dynamically grown local range.
type State struct {
	oracle *affinity.Oracle

	beta []int       // global indices of the local range, order fixed
	pos  map[int]int // global index -> position in beta

	x []float64 // vertex weights over beta positions (a point of Δ^|β|)
	g []float64 // g[r] = Σ_{i∈α} a_{beta[r],beta[i]}·x[i]

	cols map[int][]float64 // global column index -> column over beta rows

	peakEntries int // high-water mark of cached submatrix entries
	iterations  int // total LID iterations performed
}

// NewState starts Algorithm 2's initialization: β = α = {seed}, x = s_seed,
// A_{βα}x_α = a_ss = 0.
func NewState(o *affinity.Oracle, seed int) (*State, error) {
	if seed < 0 || seed >= o.N() {
		return nil, fmt.Errorf("lid: seed %d out of range [0,%d)", seed, o.N())
	}
	s := &State{
		oracle: o,
		beta:   []int{seed},
		pos:    map[int]int{seed: 0},
		x:      []float64{1},
		g:      []float64{0},
		cols:   map[int][]float64{seed: {0}},
	}
	s.trackPeak()
	return s, nil
}

// Beta returns the local range as global indices (aliases internal storage).
func (s *State) Beta() []int { return s.beta }

// Contains reports whether the global index is already in the local range β.
func (s *State) Contains(global int) bool {
	_, ok := s.pos[global]
	return ok
}

// Weight returns the current weight of a global index (0 if outside β).
func (s *State) Weight(global int) float64 {
	p, ok := s.pos[global]
	if !ok {
		return 0
	}
	return s.x[p]
}

// Len returns b = |β|.
func (s *State) Len() int { return len(s.beta) }

// Iterations returns the total number of LID iterations performed so far.
func (s *State) Iterations() int { return s.iterations }

// PeakEntries returns the high-water mark of cached A_{βα} entries, the
// quantity bounded by a*(a*+δ) in Section 4.5.
func (s *State) PeakEntries() int { return s.peakEntries }

// Density returns π(x) = Σ_{i∈α} x_i·g_i (Eq. 2 restricted to β).
func (s *State) Density() float64 {
	var pi float64
	for i, xi := range s.x {
		if xi > 0 {
			pi += xi * s.g[i]
		}
	}
	return pi
}

// Support returns the global indices with positive weight.
func (s *State) Support() []int {
	var out []int
	for i, xi := range s.x {
		if xi > simplex.WeightEps {
			out = append(out, s.beta[i])
		}
	}
	return out
}

// SupportWeights returns parallel slices of global indices and their weights,
// the (members, memberships) pair that defines the detected subgraph.
func (s *State) SupportWeights() ([]int, []float64) {
	var idx []int
	var w []float64
	for i, xi := range s.x {
		if xi > simplex.WeightEps {
			idx = append(idx, s.beta[i])
			w = append(w, xi)
		}
	}
	return idx, w
}

// Payoff returns π(s_j − x, x) = g_j − π(x) for the local position p.
func (s *State) payoff(p int, pi float64) float64 { return s.g[p] - pi }

// PayoffOf returns π(s_j − x, x) for a global index already in β, and false
// if the index is not in the local range.
func (s *State) PayoffOf(global int) (float64, bool) {
	p, ok := s.pos[global]
	if !ok {
		return 0, false
	}
	return s.payoff(p, s.Density()), true
}

// column returns the affinity column A_{β,global}, computing and caching it
// on first use (the dashed green column of Fig. 3).
func (s *State) column(global int) []float64 {
	if c, ok := s.cols[global]; ok {
		return c
	}
	c := make([]float64, len(s.beta))
	s.oracle.Column(global, s.beta, c)
	s.cols[global] = c
	s.trackPeak()
	return c
}

// Step performs one LID iteration (Algorithm 1). It returns false when x is
// already immune against every vertex in β up to tol, i.e. γ_β(x) = ∅.
func (s *State) Step(tol float64) bool {
	pi := s.Density()

	// Vertex selection, Eq. 6: argmax |π(s_i − x, x)| over C1 ∪ C2.
	best, bestAbs := -1, tol
	bestR := 0.0
	for p := range s.beta {
		r := s.payoff(p, pi)
		switch {
		case r > 0: // C1: infective vertex
			if r > bestAbs {
				best, bestAbs, bestR = p, r, r
			}
		case r < 0 && s.x[p] > simplex.WeightEps: // C2: weak member vertex
			if -r > bestAbs {
				best, bestAbs, bestR = p, -r, r
			}
		}
	}
	if best < 0 {
		return false
	}
	s.iterations++

	col := s.column(s.beta[best])
	// π(s_i − x) = a_ii − 2g_i + π(x) with a_ii = 0 (Eq. 11).
	piDiff := -2*s.g[best] + pi

	if bestR > 0 {
		// Infection with y = s_i.
		eps := simplex.InvasionShare(bestR, piDiff)
		simplex.InvadeVertex(s.x, best, eps)
		// Eq. 14: g ← g + ε(A_{βi} − g).
		for r := range s.g {
			s.g[r] += eps * (col[r] - s.g[r])
		}
	} else {
		// Immunization with the co-vertex y = s_i(x) (Eq. 7/12).
		mu := simplex.CoVertexFactor(s.x[best])
		num := mu * bestR       // π(s_i(x) − x, x) > 0
		den := mu * mu * piDiff // π(s_i(x) − x)
		eps := simplex.InvasionShare(num, den)
		simplex.InvadeCoVertex(s.x, best, eps)
		f := eps * mu
		for r := range s.g {
			s.g[r] += f * (col[r] - s.g[r])
		}
	}
	// Keep x numerically on the simplex; dust below WeightEps is removed so
	// the support (and hence peeling and the ROI) stays exact.
	simplex.Clamp(s.x)
	return true
}

// Solve iterates Step until convergence or maxIter iterations, returning the
// number of iterations executed. This is the "repeat Algorithm 1 until
// γ_β(x) = ∅ or t > T" loop of Section 4.1.
func (s *State) Solve(maxIter int, tol float64) int {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	n := 0
	for n < maxIter && s.Step(tol) {
		n++
	}
	return n
}

// Extend grows the local range with new global indices (the CIVS update
// β ← α ∪ ψ of Eq. 17): cached support columns gain rows for the new
// vertices, x gains zero weights, and g gains the rows (A_{ψα}x̂_α).
// Indices already in β are ignored. Columns cached for vertices that have
// left the support are dropped, keeping the cache within the a*(a*+δ) space
// bound of Section 4.5.
func (s *State) Extend(newGlobal []int) int {
	var fresh []int
	for _, gidx := range newGlobal {
		if _, ok := s.pos[gidx]; !ok {
			fresh = append(fresh, gidx)
		}
	}
	if len(fresh) == 0 {
		s.dropNonSupportColumns()
		return 0
	}
	oldLen := len(s.beta)
	for _, gidx := range fresh {
		s.pos[gidx] = len(s.beta)
		s.beta = append(s.beta, gidx)
		s.x = append(s.x, 0)
		s.g = append(s.g, 0)
	}
	s.dropNonSupportColumns()
	// Extend the retained (support) columns with the new rows and accumulate
	// the new g entries: g_j = Σ_{i∈α} a_{j,i}·x_i for j ∈ ψ. Columns are
	// processed in sorted order: map-order iteration would make the
	// floating-point accumulation order (and hence tie-breaking in later
	// vertex selections) run-dependent.
	colIdxs := make([]int, 0, len(s.cols))
	for colIdx := range s.cols {
		colIdxs = append(colIdxs, colIdx)
	}
	sort.Ints(colIdxs)
	tail := make([]float64, len(fresh))
	for _, colIdx := range colIdxs {
		col := s.cols[colIdx]
		s.oracle.Column(colIdx, s.beta[oldLen:], tail)
		col = append(col, tail...)
		s.cols[colIdx] = col
		xi := s.x[s.pos[colIdx]]
		if xi > 0 {
			for r := range tail {
				s.g[oldLen+r] += xi * tail[r]
			}
		}
	}
	s.trackPeak()
	return len(fresh)
}

// dropNonSupportColumns releases cached columns for vertices outside the
// current support. Support columns must be kept: they are exactly A_{βα}.
func (s *State) dropNonSupportColumns() {
	for colIdx := range s.cols {
		if s.x[s.pos[colIdx]] <= simplex.WeightEps {
			delete(s.cols, colIdx)
		}
	}
}

// CachedEntries returns the current number of cached submatrix entries.
func (s *State) CachedEntries() int {
	n := 0
	for _, c := range s.cols {
		n += len(c)
	}
	return n
}

func (s *State) trackPeak() {
	if n := s.CachedEntries(); n > s.peakEntries {
		s.peakEntries = n
	}
}

// Immune reports whether x is immune (payoff ≤ tol) against every vertex of
// the given global index set. Indices outside β are evaluated directly from
// the oracle in O(|α|) each without growing the cache: π(s_j, x) = Σ a_ji x_i.
func (s *State) Immune(candidates []int, tol float64) bool {
	pi := s.Density()
	sup, w := s.SupportWeights()
	for _, gidx := range candidates {
		if p, ok := s.pos[gidx]; ok {
			if s.payoff(p, pi) > tol {
				return false
			}
			continue
		}
		var gj float64
		for t, i := range sup {
			gj += w[t] * s.oracle.At(gidx, i)
		}
		if gj-pi > tol {
			return false
		}
	}
	return true
}

// Sanity verifies internal invariants (x on simplex, g consistent with the
// cached columns). It is O(|β|·|α|) and intended for tests and debugging.
func (s *State) Sanity() error {
	if !simplex.IsMember(s.x, 1e-6) {
		return fmt.Errorf("lid: x off simplex (sum=%v)", sum(s.x))
	}
	for p, gidx := range s.beta {
		if s.pos[gidx] != p {
			return fmt.Errorf("lid: pos map inconsistent at %d", p)
		}
	}
	// Recompute g from scratch and compare.
	want := make([]float64, len(s.beta))
	for p, xi := range s.x {
		if xi <= 0 {
			continue
		}
		for r, rg := range s.beta {
			if r == p {
				continue
			}
			want[r] += xi * s.oracle.Kernel.Affinity(s.oracle.Point(rg), s.oracle.Point(s.beta[p]))
		}
	}
	for r := range want {
		if math.Abs(want[r]-s.g[r]) > 1e-6 {
			return fmt.Errorf("lid: g[%d] = %v, want %v", r, s.g[r], want[r])
		}
	}
	return nil
}

func sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}
