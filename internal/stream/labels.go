package stream

import "fmt"

const (
	labelChunkShift = 10
	labelChunk      = 1 << labelChunkShift
	labelChunkMask  = labelChunk - 1
)

// Labels is the chunked, structurally shared per-point assignment vector
// published in a View: labels[i] is the ordinal of the cluster owning point
// i, or -1 for noise. Snapshots share chunk storage with the live clusterer;
// the live side copies a chunk only the first time it writes into it after a
// publish (copy-on-write at chunk granularity), so publishing costs
// O(n/chunk) pointer copies and a commit that relabels b points costs
// O(b + touched chunks) — not the O(n) flat copy the pre-segmentation View
// paid. Reads are safe for unlimited concurrency; all mutation is package-
// internal and single-writer.
type Labels struct {
	chunks [][]int32
	// shared[c] marks chunk c as possibly referenced by a snapshot: the next
	// write to it must copy first.
	shared []bool
	n      int
}

// Len returns the number of labeled points.
func (l *Labels) Len() int {
	if l == nil {
		return 0
	}
	return l.n
}

// At returns the label of point i (-1 = noise).
func (l *Labels) At(i int) int { return int(l.chunks[i>>labelChunkShift][i&labelChunkMask]) }

// Flat materializes the labels into a fresh []int. Boundary interop (public
// Labels() accessors, the snapshot codec), not hot paths.
func (l *Labels) Flat() []int {
	if l == nil {
		return nil
	}
	out := make([]int, 0, l.n)
	for _, c := range l.chunks {
		for _, v := range c {
			out = append(out, int(v))
		}
	}
	return out
}

// set writes label v at point i, copying the chunk first if a snapshot may
// share it.
func (l *Labels) set(i, v int) {
	c := i >> labelChunkShift
	if l.shared[c] {
		l.chunks[c] = append(make([]int32, 0, labelChunk), l.chunks[c]...)
		l.shared[c] = false
	}
	l.chunks[c][i&labelChunkMask] = int32(v)
}

// append adds one label, opening a fresh chunk when the tail is full. A
// shared tail chunk is copied first so divergent lineages (a clusterer
// restored from a view, and the view's original writer) can both append
// without touching common storage.
func (l *Labels) append(v int) {
	c := len(l.chunks) - 1
	if c < 0 || len(l.chunks[c]) == labelChunk {
		l.chunks = append(l.chunks, make([]int32, 0, labelChunk))
		l.shared = append(l.shared, false)
		c++
	} else if l.shared[c] {
		l.chunks[c] = append(make([]int32, 0, labelChunk), l.chunks[c]...)
		l.shared[c] = false
	}
	l.chunks[c] = append(l.chunks[c], int32(v))
	l.n++
}

// snapshot returns a frozen copy sharing every chunk with the receiver and
// marks all chunks shared on both sides, arming the copy-on-write.
func (l *Labels) snapshot() *Labels {
	if l == nil {
		return nil
	}
	for c := range l.shared {
		l.shared[c] = true
	}
	s := &Labels{
		chunks: append([][]int32(nil), l.chunks...),
		shared: make([]bool, len(l.chunks)),
		n:      l.n,
	}
	for c := range s.shared {
		s.shared[c] = true
	}
	return s
}

// labelsFromFlat chunks a flat label slice (the snapshot-restore path).
func labelsFromFlat(flat []int) *Labels {
	l := &Labels{}
	for _, v := range flat {
		l.append(v)
	}
	return l
}

// checkRange validates that every label lies in [-1, clusters).
func (l *Labels) checkRange(clusters int) error {
	for i := 0; i < l.n; i++ {
		if v := l.At(i); v < -1 || v >= clusters {
			return fmt.Errorf("label %d of point %d out of range [-1,%d)", v, i, clusters)
		}
	}
	return nil
}
