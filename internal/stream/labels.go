package stream

import "fmt"

const (
	labelChunkShift = 10
	labelChunk      = 1 << labelChunkShift
	labelChunkMask  = labelChunk - 1
)

// Labels is the chunked, structurally shared per-point assignment vector
// published in a View: labels[i] is the ordinal of the cluster owning point
// i, or -1 for noise. Snapshots share chunk storage with the live clusterer;
// the live side copies a chunk only the first time it writes into it after a
// publish (copy-on-write at chunk granularity), so publishing costs
// O(n/chunk) pointer copies and a commit that relabels b points costs
// O(b + touched chunks) — not the O(n) flat copy the pre-segmentation View
// paid. Reads are safe for unlimited concurrency; all mutation is package-
// internal and single-writer.
// A nil chunk is released storage: every point in its range was evicted and
// reads answer -1 without touching memory (label chunks and matrix chunks
// share the same granularity, so a released matrix chunk releases its label
// chunk too).
type Labels struct {
	chunks [][]int32
	// shared[c] marks chunk c as possibly referenced by a snapshot: the next
	// write to it must copy first.
	shared []bool
	n      int
}

// Len returns the number of labeled points.
func (l *Labels) Len() int {
	if l == nil {
		return 0
	}
	return l.n
}

// At returns the label of point i (-1 = noise; released chunks hold only
// evicted points, which are noise by definition).
func (l *Labels) At(i int) int {
	ch := l.chunks[i>>labelChunkShift]
	if ch == nil {
		return -1
	}
	return int(ch[i&labelChunkMask])
}

// Flat materializes the labels into a fresh []int. Boundary interop (public
// Labels() accessors, the snapshot codec), not hot paths. Released chunks
// materialize as -1 runs.
func (l *Labels) Flat() []int {
	if l == nil {
		return nil
	}
	out := make([]int, 0, l.n)
	for c, ch := range l.chunks {
		if ch == nil {
			rows := min(labelChunk, l.n-c*labelChunk)
			for r := 0; r < rows; r++ {
				out = append(out, -1)
			}
			continue
		}
		for _, v := range ch {
			out = append(out, int(v))
		}
	}
	return out
}

// set writes label v at point i, copying the chunk first if a snapshot may
// share it. Writing into a released chunk is a bug (only evicted points live
// there) and panics via the nil slice.
func (l *Labels) set(i, v int) {
	c := i >> labelChunkShift
	if l.shared[c] {
		l.chunks[c] = append(make([]int32, 0, labelChunk), l.chunks[c]...)
		l.shared[c] = false
	}
	l.chunks[c][i&labelChunkMask] = int32(v)
}

// append adds one label, opening a fresh chunk when the tail is full or was
// released (a released chunk is full — of evicted points — and never
// written again). A shared tail chunk is copied first so divergent lineages
// (a clusterer restored from a view, and the view's original writer) can
// both append without touching common storage.
func (l *Labels) append(v int) {
	c := len(l.chunks) - 1
	if c < 0 || l.chunks[c] == nil || len(l.chunks[c]) == labelChunk {
		l.chunks = append(l.chunks, make([]int32, 0, labelChunk))
		l.shared = append(l.shared, false)
		c++
	} else if l.shared[c] {
		l.chunks[c] = append(make([]int32, 0, labelChunk), l.chunks[c]...)
		l.shared[c] = false
	}
	l.chunks[c] = append(l.chunks[c], int32(v))
	l.n++
}

// releaseChunk drops chunk c's storage. Callers guarantee every point in
// the chunk's range is evicted (label -1); snapshots sharing the chunk keep
// their own reference.
func (l *Labels) releaseChunk(c int) {
	l.chunks[c] = nil
	l.shared[c] = false
}

// chunkReleased reports whether chunk c's storage was dropped.
func (l *Labels) chunkReleased(c int) bool { return l.chunks[c] == nil }

// numChunks returns the label chunk count (same granularity as the matrix).
func (l *Labels) numChunks() int { return len(l.chunks) }

// snapshot returns a frozen copy sharing every chunk with the receiver and
// marks all chunks shared on both sides, arming the copy-on-write.
func (l *Labels) snapshot() *Labels {
	if l == nil {
		return nil
	}
	for c := range l.shared {
		l.shared[c] = true
	}
	s := &Labels{
		chunks: append([][]int32(nil), l.chunks...),
		shared: make([]bool, len(l.chunks)),
		n:      l.n,
	}
	for c := range s.shared {
		s.shared[c] = true
	}
	return s
}

// labelsFromFlat chunks a flat label slice (the snapshot-restore path).
func labelsFromFlat(flat []int) *Labels {
	l := &Labels{}
	for _, v := range flat {
		l.append(v)
	}
	return l
}

// checkRange validates that every label lies in [-1, clusters).
func (l *Labels) checkRange(clusters int) error {
	for i := 0; i < l.n; i++ {
		if v := l.At(i); v < -1 || v >= clusters {
			return fmt.Errorf("label %d of point %d out of range [-1,%d)", v, i, clusters)
		}
	}
	return nil
}
