package stream

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"alid/internal/testutil"
)

// checkLabelClusterConsistency asserts the bidirectional invariant between
// Labels() and Clusters(): every label points into a cluster that contains
// the point, and every member carries its cluster's label unless a strictly
// denser overlapping cluster claimed it.
func checkLabelClusterConsistency(t *testing.T, c *Clusterer) {
	t.Helper()
	lbl := c.Labels()
	cls := c.Clusters()
	for i, l := range lbl {
		if l == -1 {
			continue
		}
		if l < 0 || l >= len(cls) {
			t.Fatalf("point %d labeled %d, only %d clusters", i, l, len(cls))
		}
		if !slices.Contains(cls[l].Members, i) {
			t.Fatalf("point %d labeled %d but cluster %d does not contain it", i, l, l)
		}
	}
	for ci, cl := range cls {
		for _, m := range cl.Members {
			got := lbl[m]
			if got == ci {
				continue
			}
			if got == -1 {
				t.Fatalf("member %d of cluster %d is unlabeled", m, ci)
			}
			if cls[got].Density <= cl.Density {
				t.Fatalf("member %d of cluster %d (density %v) claimed by cluster %d (density %v): overlaps must resolve to the densest",
					m, ci, cl.Density, got, cls[got].Density)
			}
			if !slices.Contains(cls[got].Members, m) {
				t.Fatalf("member %d stolen by cluster %d that does not contain it", m, got)
			}
		}
	}
}

// After a commit that re-converges a dirty cluster, labels must track the
// re-converged membership exactly.
func TestLabelStabilityAfterDirtyRecovergence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	initial, _ := testutil.Blobs(31, [][]float64{{0, 0}, {14, 14}}, 25, 0.3, 10, 0, 14)
	c, err := New(initial, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	checkLabelClusterConsistency(t, c)
	if len(c.Clusters()) == 0 {
		t.Fatal("no initial clusters — test is vacuous")
	}

	// Infective arrivals inside the first blob dirty it; far noise rides along.
	for i := 0; i < 15; i++ {
		p := []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}
		if err := c.Add(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		p := []float64{40 + rng.Float64()*20, -40 - rng.Float64()*20}
		if err := c.Add(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	checkLabelClusterConsistency(t, c)
}

// A dirty cluster whose re-convergence lands below the density threshold is
// dropped entirely (the "empty re-convergence" edge): its members must revert
// to noise rather than keep a dangling label.
func TestDroppedRecovergenceClearsLabels(t *testing.T) {
	initial, _ := testutil.Blobs(37, [][]float64{{0, 0}}, 30, 0.3, 0, 0, 1)
	c, err := New(initial, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if len(c.Clusters()) == 0 {
		t.Fatal("no cluster detected — test is vacuous")
	}
	v := c.View()

	// Same state, but under a config whose threshold the cluster cannot meet
	// after re-convergence.
	strict := streamConfig()
	strict.Core.DensityThreshold = 0.999
	rc, err := Restore(strict, v.Mat, v.Index, v.Clusters, v.Labels.Flat(), v.Commits)
	if err != nil {
		t.Fatal(err)
	}
	// An exact duplicate of the heaviest member is always infective (its
	// payoff exceeds the member's by w·a(dup,member) > tol), so the cluster
	// goes dirty and re-converges.
	seed := heaviestMember(v.Clusters[0])
	dup := append([]float64(nil), v.Mat.Row(seed)...)
	if err := rc.Add(ctx, dup); err != nil {
		t.Fatal(err)
	}
	if err := rc.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(rc.Clusters()); got != 0 {
		t.Fatalf("sub-threshold re-convergence kept %d clusters", got)
	}
	for i, l := range rc.Labels() {
		if l != -1 {
			t.Fatalf("point %d still labeled %d after its cluster was dropped", i, l)
		}
	}
	checkLabelClusterConsistency(t, rc)
}

// A View must stay frozen while the live clusterer advances (copy-on-write).
func TestViewImmutableUnderCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	initial, _ := testutil.Blobs(41, [][]float64{{0, 0}}, 25, 0.3, 5, 0, 1)
	c, err := New(initial, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	v := c.View()
	wantN := v.Mat.N
	wantLabels := v.Labels.Flat()
	wantRow0 := append([]float64(nil), v.Mat.Row(0)...)
	wantCand := v.Index.CandidatesByID(0)

	for i := 0; i < 60; i++ {
		p := []float64{20 + rng.NormFloat64()*0.3, 20 + rng.NormFloat64()*0.3}
		if err := c.Add(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if c.N() <= wantN {
		t.Fatal("live clusterer did not advance")
	}
	if v.Mat.N != wantN || v.Index.N() != wantN || v.Labels.Len() != wantN {
		t.Fatalf("view grew: mat=%d index=%d labels=%d want %d", v.Mat.N, v.Index.N(), v.Labels.Len(), wantN)
	}
	if !slices.Equal(v.Labels.Flat(), wantLabels) {
		t.Fatal("view labels mutated")
	}
	if !slices.Equal(v.Mat.Row(0), wantRow0) {
		t.Fatal("view matrix mutated")
	}
	if !slices.Equal(v.Index.CandidatesByID(0), wantCand) {
		t.Fatal("view index mutated")
	}
	// A second view reflects the advanced state.
	v2 := c.View()
	if v2.Mat.N != c.N() {
		t.Fatalf("fresh view has %d points, live has %d", v2.Mat.N, c.N())
	}
}

func TestAddRejectsWrongWidth(t *testing.T) {
	c, err := New([][]float64{{0, 0}, {1, 1}}, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(context.Background(), []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-width point accepted")
	}
	if err := c.Add(context.Background(), nil); err == nil {
		t.Fatal("empty point accepted")
	}
	if got := c.Pending(); got != 2 {
		t.Fatalf("rejected points were buffered: pending=%d", got)
	}
}

func TestNewRejectsRaggedInitial(t *testing.T) {
	if _, err := New([][]float64{{0, 0}, {1, 1, 1}}, streamConfig()); err == nil {
		t.Fatal("ragged initial batch accepted")
	}
}

func TestRestoreValidation(t *testing.T) {
	initial, _ := testutil.Blobs(43, [][]float64{{0, 0}}, 20, 0.3, 0, 0, 1)
	c, err := New(initial, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	v := c.View()

	if _, err := Restore(streamConfig(), nil, v.Index, v.Clusters, v.Labels.Flat(), v.Commits); err == nil {
		t.Fatal("accepted nil matrix")
	}
	if _, err := Restore(streamConfig(), v.Mat, v.Index, v.Clusters, v.Labels.Flat()[:5], v.Commits); err == nil {
		t.Fatal("accepted short labels")
	}
	bad := v.Labels.Flat()
	bad[0] = len(v.Clusters) + 3
	if _, err := Restore(streamConfig(), v.Mat, v.Index, v.Clusters, bad, v.Commits); err == nil {
		t.Fatal("accepted out-of-range label")
	}
	// An index hashing a different dimensionality must be rejected at load.
	pts3 := make([][]float64, v.Mat.N)
	for i := range pts3 {
		pts3[i] = []float64{1, 2, 3}
	}
	c3, err := New(pts3, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(streamConfig(), v.Mat, c3.View().Index, v.Clusters, v.Labels.Flat(), v.Commits); err == nil {
		t.Fatal("accepted dimension-mismatched index")
	}

	rc, err := Restore(streamConfig(), v.Mat, v.Index, v.Clusters, v.Labels.Flat(), v.Commits)
	if err != nil {
		t.Fatal(err)
	}
	if rc.N() != c.N() || len(rc.Clusters()) != len(c.Clusters()) {
		t.Fatalf("restore mismatch: n=%d/%d clusters=%d/%d", rc.N(), c.N(), len(rc.Clusters()), len(c.Clusters()))
	}
	checkLabelClusterConsistency(t, rc)
}
