package stream

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"alid/internal/core"
	"alid/internal/testutil"
)

// Clusters must hand out a FRESH slice: a caller that appends to or
// reorders the returned slice must not be able to corrupt clusterer state
// (it used to return the live internal slice).
func TestClustersReturnsCopy(t *testing.T) {
	pts, _ := testutil.Blobs(5, [][]float64{{0, 0}, {15, 15}}, 30, 0.3, 0, 0, 15)
	c, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := c.Clusters()
	if len(got) < 2 {
		t.Fatalf("clusters = %d, want ≥ 2 — aliasing test is vacuous", len(got))
	}
	// Corrupt the returned slice every way a caller could.
	got[0], got[1] = got[1], got[0]
	got = append(got, &core.Cluster{Seed: -99})
	_ = got

	again := c.Clusters()
	if len(again) != len(got)-1 {
		t.Fatalf("appending to the returned slice changed the cluster count: %d", len(again))
	}
	// The clusterer's own ordering is intact: labels still point at the
	// right clusters.
	checkLabelClusterConsistency(t, c)
}

// A corrupt or handcrafted snapshot must fail at the Restore boundary with
// an error — never later as a heaviestMember panic inside a commit.
func TestRestoreRejectsCorruptClusters(t *testing.T) {
	pts, _ := testutil.Blobs(6, [][]float64{{0, 0}, {15, 15}}, 30, 0.3, 0, 0, 15)
	live, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := live.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	v := live.View()
	if len(v.Clusters) == 0 {
		t.Fatal("no clusters — test is vacuous")
	}

	restore := func(cls []*core.Cluster, labels []int) error {
		_, err := Restore(streamConfig(), v.Mat, v.Index, cls, labels, v.Commits)
		return err
	}
	good := v.Labels.Flat()
	if err := restore(v.Clusters, good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	// Memberless cluster: the exact shape that used to reach the
	// heaviestMember panic when a later commit re-converged it.
	memberless := append([]*core.Cluster(nil), v.Clusters...)
	memberless[0] = &core.Cluster{Density: 0.9, Seed: 1}
	if err := restore(memberless, good); err == nil {
		t.Fatal("memberless cluster accepted")
	}

	// Ragged weights.
	ragged := append([]*core.Cluster(nil), v.Clusters...)
	orig := ragged[0]
	ragged[0] = &core.Cluster{Members: orig.Members, Weights: orig.Weights[:1], Density: orig.Density}
	if err := restore(ragged, good); err == nil {
		t.Fatal("ragged weights accepted")
	}

	// Member out of range.
	oob := append([]*core.Cluster(nil), v.Clusters...)
	oob[0] = &core.Cluster{Members: []int{v.Mat.N + 7}, Weights: []float64{1}, Density: orig.Density}
	if err := restore(oob, good); err == nil {
		t.Fatal("out-of-range member accepted")
	}

	// And the committing path stays alive after a valid restore: no panic.
	ok, err := Restore(streamConfig(), v.Mat, v.Index, v.Clusters, good, v.Commits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		if err := ok.Add(ctx, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ok.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

// Eviction removes points from every answer surface: labels, clusters,
// published views and index queries. Clusters that merely lost a few
// members are repaired in place with weights renormalized on the simplex;
// a cluster losing most of its support is re-converged or dropped.
func TestEvictRemovesPointsEverywhere(t *testing.T) {
	pts, _ := testutil.Blobs(7, [][]float64{{0, 0}, {15, 15}, {-15, 15}}, 40, 0.3, 10, -30, 30)
	c, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if len(c.Clusters()) < 3 {
		t.Fatalf("clusters = %d, want ≥ 3", len(c.Clusters()))
	}

	// Kill blob 0 entirely (ids 0..39) and nibble two members off blob 1.
	ids := make([]int, 0, 42)
	for i := 0; i < 40; i++ {
		ids = append(ids, i)
	}
	ids = append(ids, 40, 41)
	n, err := c.Evict(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if n != 42 {
		t.Fatalf("evicted %d, want 42", n)
	}
	if c.Live() != len(pts)-42 || c.Evicted() != 42 {
		t.Fatalf("live %d evicted %d", c.Live(), c.Evicted())
	}

	labels := c.Labels()
	for _, id := range ids {
		if labels[id] != -1 {
			t.Fatalf("evicted point %d still labeled %d", id, labels[id])
		}
	}
	for ci, cl := range c.Clusters() {
		var sum float64
		for t2, m := range cl.Members {
			for _, id := range ids {
				if m == id {
					t.Fatalf("cluster %d still contains evicted member %d", ci, m)
				}
			}
			sum += cl.Weights[t2]
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("cluster %d weights sum to %v after repair, want 1 on the simplex", ci, sum)
		}
		if cl.Density < 0.75 {
			t.Fatalf("cluster %d kept with density %v below threshold", ci, cl.Density)
		}
	}
	// The view's index answers only with survivors.
	v := c.View()
	for _, id := range []int{50, 90, 119} {
		for _, cand := range v.Index.CandidatesByID(id) {
			if int(cand) < 42 && cand >= 0 {
				for _, dead := range ids {
					if int(cand) == dead {
						t.Fatalf("dead id %d surfaced from the view index", cand)
					}
				}
			}
		}
	}
	checkLabelClusterConsistency(t, c)

	// Idempotent retries and later commits keep working; ids stay stable.
	if n, err := c.Evict(ctx, ids); err != nil || n != 0 {
		t.Fatalf("re-evict: n=%d err=%v", n, err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		if err := c.Add(ctx, []float64{15 + rng.NormFloat64()*0.3, 15 + rng.NormFloat64()*0.3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	checkLabelClusterConsistency(t, c)
	if c.N() != len(pts)+30 {
		t.Fatalf("N = %d, want %d (ids stable, dead included)", c.N(), len(pts)+30)
	}

	// Out-of-range ids are rejected before any mutation.
	if _, err := c.Evict(ctx, []int{c.N() + 3}); err == nil {
		t.Fatal("out-of-range evict accepted")
	}
}

// countdownCtx reports cancellation only after its Err has been consulted
// `allow` times: it lets a test cancel at a precise point inside Evict's
// re-convergence phase.
type countdownCtx struct {
	context.Context
	calls *int
	allow int
}

func (c countdownCtx) Err() error {
	*c.calls++
	if *c.calls > c.allow {
		return context.Canceled
	}
	return nil
}

// A cancellation that lands inside phase-3 re-convergence must not leave
// labels disagreeing with cluster membership: the repaired cluster is
// reclaimed, its survivors stay labeled, and no cluster retains a dead
// member.
func TestEvictCancelledReconvergeStaysConsistent(t *testing.T) {
	pts, _ := testutil.Blobs(19, [][]float64{{0, 0}, {15, 15}}, 40, 0.3, 0, 0, 15)
	c, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(c.Clusters()) < 2 {
		t.Fatal("need ≥ 2 clusters")
	}

	// Evict ~45% of blob 0's points: well past evictReconvergeShare, so its
	// cluster enters phase 3. The countdown lets the phase-3 loop-top check
	// pass and fails the next poll, inside DetectFrom.
	ids := make([]int, 0, 18)
	for i := 0; i < 18; i++ {
		ids = append(ids, i)
	}
	calls := 0
	_, err = c.Evict(countdownCtx{Context: context.Background(), calls: &calls, allow: 1}, ids)
	if err == nil {
		t.Fatal("cancellation did not surface — countdown never hit a DetectFrom poll")
	}

	// Tombstones applied, membership repaired, labels consistent.
	if c.Evicted() != 18 {
		t.Fatalf("evicted %d, want 18", c.Evicted())
	}
	for ci, cl := range c.Clusters() {
		var sum float64
		for t2, m := range cl.Members {
			if m < 18 {
				t.Fatalf("cluster %d retains dead member %d after cancelled evict", ci, m)
			}
			sum += cl.Weights[t2]
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("cluster %d weights sum %v after cancelled evict", ci, sum)
		}
	}
	checkLabelClusterConsistency(t, c)

	// The stream stays fully operational: a later commit re-converges.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10; i++ {
		if err := c.Add(context.Background(), []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkLabelClusterConsistency(t, c)
}

// MaxPoints retention: a long ingest run keeps the live set pinned at the
// window while ids (and N) keep growing — the unbounded-memory bug this PR
// exists to fix, at the Clusterer level.
func TestRetentionMaxPoints(t *testing.T) {
	const window = 120
	cfg := streamConfig()
	cfg.BatchSize = 40
	cfg.Retention = Retention{MaxPoints: window}
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	total := 0
	for batch := 0; batch < 30; batch++ {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for i := 0; i < 40; i++ {
			if err := c.Add(ctx, []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if c.Pending() != 0 {
			if err := c.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if got := c.Live(); got > window {
			t.Fatalf("after %d points live = %d > window %d", total, got, window)
		}
	}
	if c.N() != total {
		t.Fatalf("N = %d, want %d", c.N(), total)
	}
	if c.Live() != window {
		t.Fatalf("steady-state live = %d, want %d", c.Live(), window)
	}
	// The oldest N-window points are all dead, the newest `window` all live.
	for i := 0; i < total-window; i += 97 {
		if lbl := c.Labels()[i]; lbl != -1 {
			t.Fatalf("expired point %d still labeled %d", i, lbl)
		}
	}
	checkLabelClusterConsistency(t, c)
	// No maintained cluster references an expired point.
	for ci, cl := range c.Clusters() {
		for _, m := range cl.Members {
			if m < total-window {
				t.Fatalf("cluster %d kept expired member %d", ci, m)
			}
		}
	}
}

// MaxAge retention under an injected clock: commits older than the bound
// are evicted wholesale, newer ones survive.
func TestRetentionMaxAge(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	cfg := streamConfig()
	cfg.BatchSize = 1 << 30
	cfg.Retention = Retention{MaxAge: 10 * time.Second, Now: clock}
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(17))
	commitBlob := func(cx, cy float64) {
		for i := 0; i < 30; i++ {
			if err := c.Add(ctx, []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	commitBlob(0, 0) // t=1000: ids 0..29
	now = now.Add(6 * time.Second)
	commitBlob(50, 50) // t=1006: ids 30..59
	if c.Live() != 60 {
		t.Fatalf("live = %d before any expiry, want 60", c.Live())
	}
	now = now.Add(6 * time.Second)
	commitBlob(100, 100) // t=1012: first commit is now 12s old → expired
	if c.Live() != 60 {
		t.Fatalf("live = %d, want 60 (first commit expired)", c.Live())
	}
	for i := 0; i < 30; i++ {
		if c.Labels()[i] != -1 {
			t.Fatalf("expired point %d still labeled", i)
		}
	}
	for i := 30; i < 90; i++ {
		if !c.mat.Live(i) {
			t.Fatalf("fresh point %d evicted", i)
		}
	}
	checkLabelClusterConsistency(t, c)
}
