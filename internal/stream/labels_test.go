package stream

import (
	"math/rand"
	"slices"
	"testing"
)

// Labels snapshots are frozen at chunk granularity: writes and appends on
// the live side after a snapshot must copy-on-write, never showing through,
// across multiple chunks and multiple generations of snapshots.
func TestLabelsCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := &Labels{}
	n := 2*labelChunk + 300
	ref := make([]int, n)
	for i := range ref {
		ref[i] = rng.Intn(5) - 1
		l.append(ref[i])
	}
	if l.Len() != n || !slices.Equal(l.Flat(), ref) {
		t.Fatal("append/Flat round trip failed")
	}

	snap1 := l.snapshot()
	want1 := append([]int(nil), ref...)

	// Mutate every region: first chunk, middle chunk, tail; then append past
	// a chunk boundary.
	for _, i := range []int{0, labelChunk - 1, labelChunk + 7, 2*labelChunk + 299} {
		l.set(i, 99)
		ref[i] = 99
	}
	for i := 0; i < labelChunk; i++ {
		l.append(7)
		ref = append(ref, 7)
	}
	if !slices.Equal(snap1.Flat(), want1) {
		t.Fatal("snapshot 1 mutated by live writes")
	}
	if !slices.Equal(l.Flat(), ref) {
		t.Fatal("live labels wrong after COW writes")
	}
	for _, i := range []int{0, labelChunk + 7, n - 1, n} {
		if l.At(i) != ref[i] {
			t.Fatalf("At(%d) = %d, want %d", i, l.At(i), ref[i])
		}
	}

	// A second snapshot freezes the new state; the first stays intact.
	snap2 := l.snapshot()
	want2 := append([]int(nil), ref...)
	l.set(5, -1)
	l.append(3)
	if !slices.Equal(snap1.Flat(), want1) || !slices.Equal(snap2.Flat(), want2) {
		t.Fatal("older snapshots disturbed by later writes")
	}

	// Divergent lineage: both sides of a snapshot may keep writing (the
	// restore-from-view path) — chunk COW isolates them from each other and
	// from earlier snapshots.
	fork := l.snapshot()
	liveWant := append([]int(nil), l.Flat()...)
	fork.set(1, 42)
	fork.append(8)
	if !slices.Equal(l.Flat(), liveWant) {
		t.Fatal("live labels mutated via forked lineage")
	}
	if !slices.Equal(snap2.Flat(), want2) {
		t.Fatal("snapshot mutated via forked lineage")
	}
	if fork.At(1) != 42 || fork.At(fork.Len()-1) != 8 {
		t.Fatal("forked lineage lost its own writes")
	}
}

func TestLabelsCheckRange(t *testing.T) {
	l := labelsFromFlat([]int{-1, 0, 2})
	if err := l.checkRange(3); err != nil {
		t.Fatal(err)
	}
	if err := l.checkRange(2); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := labelsFromFlat([]int{-2}).checkRange(1); err == nil {
		t.Fatal("label below -1 accepted")
	}
}
