package stream

import (
	"context"
	"testing"

	"alid/internal/testutil"
)

// CompactGeneration's id-map contract: the published map covers every id of
// the PREVIOUS generation, sends dead ids to -1 and live ids to a dense
// renumbering that preserves order, and the ever-seen counter keeps counting
// released ids across generations.
func TestCompactGenerationIDMapContract(t *testing.T) {
	ctx := context.Background()
	pts, _ := testutil.Blobs(9, [][]float64{{0, 0}, {15, 15}}, 15, 0.3, 0, 0, 15)
	c, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	oldLabels := c.Labels()

	dead := []int{1, 3, 5}
	if _, err := c.Evict(ctx, dead); err != nil {
		t.Fatal(err)
	}
	released, err := c.CompactGeneration()
	if err != nil {
		t.Fatal(err)
	}
	if released != len(dead) {
		t.Fatalf("released %d, want %d", released, len(dead))
	}
	if c.Generation() != 1 || c.N() != len(pts)-len(dead) || c.EverSeenIDs() != len(pts) {
		t.Fatalf("generation=%d n=%d ever=%d, want 1/%d/%d",
			c.Generation(), c.N(), c.EverSeenIDs(), len(pts)-len(dead), len(pts))
	}

	m := c.IDMap()
	if len(m) != len(pts) {
		t.Fatalf("id map covers %d ids, want %d (previous generation)", len(m), len(pts))
	}
	isDead := map[int]bool{1: true, 3: true, 5: true}
	next := 0
	newLabels := c.Labels()
	for old, nu := range m {
		if isDead[old] {
			if nu != -1 {
				t.Fatalf("dead id %d maps to %d, want -1", old, nu)
			}
			continue
		}
		if nu != next {
			t.Fatalf("live id %d maps to %d, want dense order-preserving %d", old, nu, next)
		}
		if newLabels[nu] != oldLabels[old] {
			t.Fatalf("id %d→%d label %d, want %d", old, nu, newLabels[nu], oldLabels[old])
		}
		next++
	}

	// A second generation: the map is rewritten for generation 1's ids and
	// ever-seen keeps the full history.
	if _, err := c.Evict(ctx, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompactGeneration(); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 2 || c.EverSeenIDs() != len(pts) || len(c.IDMap()) != len(pts)-len(dead) {
		t.Fatalf("second compaction: generation=%d ever=%d map=%d",
			c.Generation(), c.EverSeenIDs(), len(c.IDMap()))
	}
	if got := c.IDMap()[0]; got != -1 {
		t.Fatalf("generation-1 id 0 maps to %d, want -1", got)
	}
}

// Compacting with nothing tombstoned is a no-op: no renumbering, no
// generation bump, no id map.
func TestCompactGenerationNoOpWithoutTombstones(t *testing.T) {
	ctx := context.Background()
	pts, _ := testutil.Blobs(10, [][]float64{{0, 0}}, 20, 0.3, 0, 0, 1)
	c, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	released, err := c.CompactGeneration()
	if err != nil {
		t.Fatal(err)
	}
	if released != 0 || c.Generation() != 0 || c.IDMap() != nil {
		t.Fatalf("no-op compaction: released=%d generation=%d map=%v",
			released, c.Generation(), c.IDMap())
	}
}

// Evicting EVERYTHING and compacting resets to the empty pre-first-commit
// state — and the stream must come back: new points get fresh dense ids and
// detection works again in the new generation.
func TestCompactGenerationAllDeadResets(t *testing.T) {
	ctx := context.Background()
	pts, _ := testutil.Blobs(11, [][]float64{{0, 0}}, 12, 0.3, 0, 0, 1)
	c, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	commits := c.Commits()
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	if _, err := c.Evict(ctx, all); err != nil {
		t.Fatal(err)
	}
	released, err := c.CompactGeneration()
	if err != nil {
		t.Fatal(err)
	}
	if released != len(pts) || c.N() != 0 || c.Generation() != 1 || c.EverSeenIDs() != len(pts) {
		t.Fatalf("all-dead compaction: released=%d n=%d generation=%d ever=%d",
			released, c.N(), c.Generation(), c.EverSeenIDs())
	}
	if c.Commits() != commits {
		t.Fatalf("commit count reset: %d, want %d", c.Commits(), commits)
	}

	fresh, _ := testutil.Blobs(12, [][]float64{{5, 5}}, 25, 0.3, 0, 0, 1)
	for _, p := range fresh {
		if err := c.Add(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if c.N() != len(fresh) || len(c.Clusters()) == 0 {
		t.Fatalf("post-reset stream: n=%d clusters=%d", c.N(), len(c.Clusters()))
	}
	if c.EverSeenIDs() != len(pts)+len(fresh) {
		t.Fatalf("ever-seen after rebirth: %d, want %d", c.EverSeenIDs(), len(pts)+len(fresh))
	}
}
