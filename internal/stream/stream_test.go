package stream

import (
	"context"
	"math/rand"
	"testing"

	"alid/internal/affinity"
	"alid/internal/core"
	"alid/internal/lsh"
	"alid/internal/testutil"
)

func streamConfig() Config {
	c := core.DefaultConfig()
	c.Kernel = affinity.Kernel{K: 0.3, P: 2}
	c.LSH = lsh.Config{Projections: 6, Tables: 10, R: 4, Seed: 1}
	c.Delta = 200
	c.DensityThreshold = 0.75
	return Config{Core: c, BatchSize: 50}
}

func TestInitialBatchDetectsClusters(t *testing.T) {
	pts, labels := testutil.Blobs(3, [][]float64{{0, 0}, {15, 15}}, 30, 0.3, 20, 0, 15)
	c, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(c.Clusters()) < 2 {
		t.Fatalf("clusters = %d, want ≥ 2", len(c.Clusters()))
	}
	covered := map[int]bool{}
	for _, cl := range c.Clusters() {
		p, lbl := testutil.Purity(cl.Members, labels)
		if p < 0.9 || lbl == -1 {
			t.Fatalf("bad streaming cluster: purity=%v label=%d", p, lbl)
		}
		covered[lbl] = true
	}
	if !covered[0] || !covered[1] {
		t.Fatal("blobs not covered")
	}
}

func TestIncrementalGrowthAbsorbsNewMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	initial, _ := testutil.Blobs(7, [][]float64{{0, 0}}, 25, 0.3, 0, 0, 1)
	c, err := New(initial, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	assignedBefore := countAssigned(c.Labels())

	// Stream 15 more points of the same blob.
	for i := 0; i < 15; i++ {
		p := []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}
		if err := c.Add(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// All points belong to the same blob; every maintained cluster must be
	// blob material (peeling may split core/fringe, as offline ALID does)
	// and coverage must grow as arrivals are absorbed.
	assignedAfter := countAssigned(c.Labels())
	if assignedAfter <= assignedBefore {
		t.Fatalf("no absorption: assigned %d -> %d", assignedBefore, assignedAfter)
	}
	if len(c.Clusters()) == 0 {
		t.Fatal("cluster lost")
	}
}

func countAssigned(labels []int) int {
	n := 0
	for _, l := range labels {
		if l >= 0 {
			n++
		}
	}
	return n
}

func TestNewClusterEmergesFromStream(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	initial, _ := testutil.Blobs(11, [][]float64{{0, 0}}, 25, 0.3, 10, 0, 5)
	cfg := streamConfig()
	c, err := New(initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	before := len(c.Clusters())

	// A brand-new blob arrives far away.
	for i := 0; i < 25; i++ {
		p := []float64{20 + rng.NormFloat64()*0.3, 20 + rng.NormFloat64()*0.3}
		if err := c.Add(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Clusters()); got != before+1 {
		t.Fatalf("clusters = %d, want %d", got, before+1)
	}
}

func TestNoiseDoesNotDisturbClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	initial, _ := testutil.Blobs(17, [][]float64{{0, 0}}, 30, 0.3, 0, 0, 1)
	c, err := New(initial, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	clustersBefore := len(c.Clusters())
	densityBefore := c.Clusters()[0].Density

	// Pure uniform noise far from the blob.
	for i := 0; i < 30; i++ {
		p := []float64{30 + rng.Float64()*60, 30 + rng.Float64()*60}
		if err := c.Add(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Clusters()); got != clustersBefore {
		t.Fatalf("noise changed cluster count: %d -> %d", clustersBefore, got)
	}
	if got := c.Clusters()[0].Density; got < densityBefore-0.05 {
		t.Fatalf("noise degraded density: %v -> %v", densityBefore, got)
	}
	// Noise points remain unassigned.
	lbl := c.Labels()
	for i := 30; i < len(lbl); i++ {
		if lbl[i] != -1 {
			t.Fatalf("noise point %d assigned to %d", i, lbl[i])
		}
	}
}

func TestAddAutoCommits(t *testing.T) {
	cfg := streamConfig()
	cfg.BatchSize = 10
	c, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		if err := c.Add(ctx, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Commits() != 2 {
		t.Fatalf("commits = %d, want 2", c.Commits())
	}
	if c.N() != 20 || c.Pending() != 5 {
		t.Fatalf("N=%d pending=%d", c.N(), c.Pending())
	}
}

func TestEmptyCommitNoOp(t *testing.T) {
	c, err := New(nil, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Commits() != 0 {
		t.Fatal("empty commit counted")
	}
}

func TestLabelsConsistentWithClusters(t *testing.T) {
	pts, _ := testutil.Blobs(23, [][]float64{{0, 0}, {12, 12}}, 20, 0.3, 10, 0, 12)
	c, err := New(pts, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	lbl := c.Labels()
	for ci, cl := range c.Clusters() {
		for _, m := range cl.Members {
			if lbl[m] != ci {
				t.Fatalf("label mismatch at %d: %d vs %d", m, lbl[m], ci)
			}
		}
	}
}
