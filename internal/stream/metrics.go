package stream

import "alid/internal/obs"

// streamMetrics is the commit-pipeline and eviction instrumentation: where
// the writer's time goes (dirtiness check vs. detection), how much work each
// commit does, and how much the retention machinery churns. Everything is
// observed from the single writer goroutine onto lock-free obs primitives,
// so scrapes never see a torn value and the writer never takes a lock.
//
// Metrics are diagnostics under the same carve-out as the kernel-eval
// counter: no commit, eviction or detection decision ever reads one.
type streamMetrics struct {
	// commitDur is the full Commit wall time, retention enforcement
	// included; dirtyCheckDur and detectDur split out the two phases the
	// paper's cost model cares about (Theorem-1 dirtiness screening vs.
	// Algorithm-2 re-convergence + new-seed probing).
	commitDur     *obs.Histogram
	dirtyCheckDur *obs.Histogram
	detectDur     *obs.Histogram
	commitBatch   *obs.Histogram

	dirtyReconverged *obs.Counter
	newClusters      *obs.Counter
	publishes        *obs.Counter

	evictedPoints    *obs.Counter
	evictReconverged *obs.Counter
	chunksReleased   *obs.Counter
	lshCompactions   *obs.Counter

	// Generation compaction: how often ids were renumbered, how many dead
	// ids each pass released, and how long the rebuild took.
	generationCompactions *obs.Counter
	compactionReleased    *obs.Counter
	compactionDur         *obs.Histogram
	// lastCompactions is the index's compaction count already credited to
	// lshCompactions (the counter takes deltas at publish time).
	lastCompactions int64
}

// newStreamMetrics builds the clusterer's metrics and registers them when a
// registry is provided (nil keeps them private: they still count, cheaply,
// but render nowhere — standalone library users pay one atomic add either
// way). extra is Config.ObsLabels, appended to every family so per-shard
// clusterers can share one registry.
func newStreamMetrics(reg *obs.Registry, extra string) *streamMetrics {
	l := func(labels string) string { return obs.Labels(labels, extra) }
	m := &streamMetrics{
		commitDur:     obs.NewHistogram("alid_commit_duration_seconds", "Full commit wall time (dirtiness check, detection, retention eviction).", l(""), 1e-9),
		dirtyCheckDur: obs.NewHistogram("alid_commit_phase_seconds", "Commit time split by phase.", l(`phase="dirty_check"`), 1e-9),
		detectDur:     obs.NewHistogram("alid_commit_phase_seconds", "Commit time split by phase.", l(`phase="detect"`), 1e-9),
		commitBatch:   obs.NewHistogram("alid_commit_batch_points", "Points integrated per commit.", l(""), 1),

		dirtyReconverged: obs.NewCounter("alid_commit_dirty_reconverged_total", "Maintained clusters re-converged because an arrival was infective (Theorem 1).", l("")),
		newClusters:      obs.NewCounter("alid_commit_new_clusters_total", "Clusters newly formed from unassigned seed probes.", l("")),
		publishes:        obs.NewCounter("alid_view_publishes_total", "Immutable views published (share-and-seal snapshots).", l("")),

		evictedPoints:    obs.NewCounter("alid_evicted_points_total", "Points tombstoned by manual eviction or retention expiry.", l("")),
		evictReconverged: obs.NewCounter("alid_evict_reconverged_total", "Clusters re-converged after losing weight mass to eviction.", l("")),
		chunksReleased:   obs.NewCounter("alid_matrix_chunks_released_total", "Fully dead matrix chunks whose row storage was released.", l("")),
		lshCompactions:   obs.NewCounter("alid_lsh_compactions_total", "LSH segment merges (geometric schedule plus full compactions).", l("")),

		generationCompactions: obs.NewCounter("alid_generation_compactions_total", "Generation compactions: live ids renumbered into a fresh dense generation.", l("")),
		compactionReleased:    obs.NewCounter("alid_generation_ids_released_total", "Dead ids released by generation compactions.", l("")),
		compactionDur:         obs.NewHistogram("alid_generation_compaction_seconds", "Generation compaction (renumber + rebuild) duration.", l(""), 1e-9),
	}
	if reg != nil {
		reg.MustRegister(
			m.commitDur, m.dirtyCheckDur, m.detectDur, m.commitBatch,
			m.dirtyReconverged, m.newClusters, m.publishes,
			m.evictedPoints, m.evictReconverged, m.chunksReleased, m.lshCompactions,
			m.generationCompactions, m.compactionReleased, m.compactionDur,
		)
	}
	return m
}
