package stream

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"alid/internal/testutil"
)

// A restored clusterer that receives further arrivals into a non-empty
// pending buffer and then commits must end up indistinguishable from a
// clusterer that never went through the snapshot cycle: same labels, same
// clusters (members, weights, densities — bit-identical), same view
// answers. This covers the share-and-seal restore path: the restored side
// appends to structurally shared state taken from a published view.
func TestRestoreWithPendingBufferMatchesLive(t *testing.T) {
	initial, _ := testutil.Blobs(47, [][]float64{{0, 0}, {14, 14}}, 28, 0.3, 12, 0, 14)
	live, err := New(initial, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := live.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if len(live.Clusters()) == 0 {
		t.Fatal("no initial clusters — test is vacuous")
	}

	v := live.View()
	restored, err := Restore(streamConfig(), v.Mat, v.Index, v.Clusters, v.Labels.Flat(), v.Commits)
	if err != nil {
		t.Fatal(err)
	}

	// Stream identical arrivals into both: infective points inside the
	// first blob, a brand-new far blob, and noise — below BatchSize so both
	// sit with a non-empty pending buffer.
	rng := rand.New(rand.NewSource(48))
	var arrivals [][]float64
	for i := 0; i < 12; i++ {
		arrivals = append(arrivals, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
	}
	for i := 0; i < 18; i++ {
		arrivals = append(arrivals, []float64{-10 + rng.NormFloat64()*0.3, -10 + rng.NormFloat64()*0.3})
	}
	for i := 0; i < 4; i++ {
		arrivals = append(arrivals, []float64{40 + rng.Float64()*10, -40 - rng.Float64()*10})
	}
	for _, p := range arrivals {
		if err := live.Add(ctx, p); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(ctx, append([]float64(nil), p...)); err != nil {
			t.Fatal(err)
		}
	}
	if live.Pending() == 0 || live.Pending() != restored.Pending() {
		t.Fatalf("pending: live %d, restored %d — buffer must be non-empty and equal", live.Pending(), restored.Pending())
	}
	if err := live.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := restored.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	if live.N() != restored.N() || live.Commits() != restored.Commits() {
		t.Fatalf("n=%d/%d commits=%d/%d", live.N(), restored.N(), live.Commits(), restored.Commits())
	}
	if !slices.Equal(live.Labels(), restored.Labels()) {
		t.Fatal("labels diverge after restore+commit")
	}
	lc, rc := live.Clusters(), restored.Clusters()
	if len(lc) != len(rc) {
		t.Fatalf("cluster counts %d vs %d", len(lc), len(rc))
	}
	for i := range lc {
		if lc[i].Density != rc[i].Density || lc[i].Seed != rc[i].Seed {
			t.Fatalf("cluster %d: density %v/%v seed %d/%d", i, lc[i].Density, rc[i].Density, lc[i].Seed, rc[i].Seed)
		}
		if !slices.Equal(lc[i].Members, rc[i].Members) || !slices.Equal(lc[i].Weights, rc[i].Weights) {
			t.Fatalf("cluster %d membership diverges", i)
		}
	}

	// The published views agree too: same index answers over all points.
	lv, rv := live.View(), restored.View()
	if lv.Mat.N != rv.Mat.N || lv.Index.N() != rv.Index.N() {
		t.Fatalf("view sizes diverge: mat %d/%d index %d/%d", lv.Mat.N, rv.Mat.N, lv.Index.N(), rv.Index.N())
	}
	for id := 0; id < lv.Index.N(); id += 7 {
		if !slices.Equal(lv.Index.CandidatesByID(id), rv.Index.CandidatesByID(id)) {
			t.Fatalf("view index candidates diverge at %d", id)
		}
		if !slices.Equal(lv.Mat.Row(id), rv.Mat.Row(id)) {
			t.Fatalf("view matrix rows diverge at %d", id)
		}
	}
	checkLabelClusterConsistency(t, live)
	checkLabelClusterConsistency(t, restored)
}
