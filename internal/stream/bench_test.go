package stream

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"alid/internal/affinity"
	"alid/internal/core"
	"alid/internal/lsh"
)

// commitBenchConfig mirrors the serving benchmark geometry (d=16 blobs of
// σ=0.3): K puts intra-blob pairs at affinity ≈ 0.9 and R makes them collide
// across the 8 tables. BatchSize is set out of reach so the benchmark
// controls commit boundaries explicitly.
func commitBenchConfig() Config {
	c := core.DefaultConfig()
	c.Kernel = affinity.Kernel{K: 0.06, P: 2}
	c.LSH = lsh.Config{Projections: 12, Tables: 8, R: 14, Seed: 1}
	return Config{Core: c, BatchSize: 1 << 30}
}

// commitBenchData builds n points in d=16 as n/200 tight, well-separated
// Gaussian blobs — many moderate clusters, the serving-representative shape.
func commitBenchData(n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(91))
	const blobSize = 200
	blobs := n / blobSize
	centers := make([][]float64, blobs)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64() * 40
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[i%blobs]
		p := make([]float64, d)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*0.3
		}
		pts[i] = p
	}
	return pts
}

// BenchmarkEvict is the acceptance gate of tombstoned eviction: an
// ingest+evict loop at a fixed retention window must keep (a) the live
// point count at the window and (b) the per-commit cost flat in the number
// of points EVER seen. The sub-benchmarks pre-run the loop until `ever`
// total points have been committed (10× and 50× the window), then measure
// the steady-state cost of one more batch commit — which includes the
// retention eviction of one expired batch, its cluster teardown and the
// share-and-seal publish bookkeeping. scripts/bench.sh records the
// ever=100000 / ever=20000 ratio into BENCH_PR5.json (gate: ≤ 1.3); a
// growing ratio means some per-commit path still scales with dead state.
func BenchmarkEvict(b *testing.B) {
	const window = 2000
	const batch = 64
	const d = 16
	for _, ever := range []int{20000, 100000} {
		b.Run(fmt.Sprintf("ever=%d", ever), func(b *testing.B) {
			ctx := context.Background()
			cfg := commitBenchConfig()
			cfg.Retention = Retention{MaxPoints: window}
			c, err := New(nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(93))
			commitBatch := func(i int) {
				base := 1000 + float64(i)*100
				for k := 0; k < batch; k++ {
					p := make([]float64, d)
					for j := range p {
						p[j] = base + rng.NormFloat64()*0.3
					}
					if err := c.Add(ctx, p); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.Commit(ctx); err != nil {
					b.Fatal(err)
				}
				if c.Live() > window {
					b.Fatalf("live %d exceeds window %d", c.Live(), window)
				}
			}
			i := 0
			for ; c.N() < ever; i++ {
				commitBatch(i)
			}
			if c.Live() != window {
				b.Fatalf("steady state not reached: live %d, want %d", c.Live(), window)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				commitBatch(i)
				i++
			}
			b.StopTimer()
			b.ReportMetric(float64(c.Live()), "live-points")
		})
	}
}

// BenchmarkGenerationSteadyState is the acceptance gate of generation
// compaction: the BenchmarkEvict loop (fixed retention window, continuous
// ingest) plus the auto-compaction policy — renumber whenever the evicted
// share of committed ids exceeds 0.5. BenchmarkEvict proves the per-commit
// COST stays flat in points ever seen; this benchmark proves the committed
// id space ITSELF stays bounded (N ≤ 2×window + one settling batch, live
// pinned at the window) while the amortized cost of one batch commit — now
// including its share of the periodic renumbering — stays flat too.
// scripts/bench.sh records the ever=100000 / ever=20000 ratio into
// BENCH_PR10.json (gate: ≤ 1.3); a growing ratio means some per-commit or
// per-compaction path still scales with dead history.
func BenchmarkGenerationSteadyState(b *testing.B) {
	const window = 2000
	const batch = 64
	const d = 16
	const share = 0.5
	for _, ever := range []int{20000, 100000} {
		b.Run(fmt.Sprintf("ever=%d", ever), func(b *testing.B) {
			ctx := context.Background()
			cfg := commitBenchConfig()
			cfg.Retention = Retention{MaxPoints: window}
			c, err := New(nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(94))
			commitBatch := func(i int) {
				base := 1000 + float64(i)*100
				for k := 0; k < batch; k++ {
					p := make([]float64, d)
					for j := range p {
						p[j] = base + rng.NormFloat64()*0.3
					}
					if err := c.Add(ctx, p); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.Commit(ctx); err != nil {
					b.Fatal(err)
				}
				// The engine's maybeCompact policy, inlined: renumber once
				// the evicted share crosses the threshold.
				if n := c.N(); n > 0 && float64(n-c.Live())/float64(n) > share {
					if _, err := c.CompactGeneration(); err != nil {
						b.Fatal(err)
					}
				}
				if c.Live() > window {
					b.Fatalf("live %d exceeds window %d", c.Live(), window)
				}
				if c.N() > 2*window+batch {
					b.Fatalf("committed id space %d not bounded (want ≤ %d)", c.N(), 2*window+batch)
				}
			}
			i := 0
			for ; c.EverSeenIDs() < ever; i++ {
				commitBatch(i)
			}
			if c.Live() != window {
				b.Fatalf("steady state not reached: live %d, want %d", c.Live(), window)
			}
			if c.Generation() == 0 {
				b.Fatal("no compaction happened during warmup — gate is vacuous")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				commitBatch(i)
				i++
			}
			b.StopTimer()
			b.ReportMetric(float64(c.N()), "committed-ids")
			b.ReportMetric(float64(c.Generation()), "generation")
		})
	}
}

// BenchmarkCommitAfterPublish is the acceptance gate of the segmented-
// storage refactor: the cost of a batch commit that immediately follows a
// published View must NOT scale with the number of committed points n. The
// pre-segmentation copy-on-write paid an O(n·d) matrix clone plus an O(n·l)
// index clone on exactly this path; share-and-seal replaces both with
// tail-only copies, so the ns/op at n=100k should stay within ~1.2× of
// n=10k at the same batch size (scripts/bench.sh records the ratio into
// BENCH_PR3.json).
//
// Each iteration publishes a view, streams one fresh far-away 64-point blob
// (constant detection work per commit, no interference with the standing
// clusters), and commits.
func BenchmarkCommitAfterPublish(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const d = 16
			const batch = 64
			ctx := context.Background()
			c, err := New(commitBenchData(n, d), commitBenchConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Commit(ctx); err != nil {
				b.Fatal(err)
			}
			if len(c.Clusters()) == 0 {
				b.Fatal("no clusters after initial commit")
			}
			rng := rand.New(rand.NewSource(92))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := c.View()
				if v.Mat.N != c.N() {
					b.Fatal("view out of sync")
				}
				base := 1000 + float64(i)*100
				for k := 0; k < batch; k++ {
					p := make([]float64, d)
					for j := range p {
						p[j] = base + rng.NormFloat64()*0.3
					}
					if err := c.Add(ctx, p); err != nil {
						b.Fatal(err)
					}
				}
				if err := c.Commit(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
