// Package stream implements an online extension of ALID — the future-work
// direction named in the paper's conclusion ("extend ALID towards the online
// version to efficiently process streaming data sources").
//
// Points arrive one at a time and are committed in batches. On each commit:
//
//  1. the new points are hashed into the existing LSH index (no rebuild);
//  2. every maintained cluster is checked for infective new points — by
//     Theorem 1 a cluster stays a global dense subgraph unless some vertex
//     has π(s_j, x) > π(x), so clean clusters are left untouched;
//  3. dirty clusters are re-converged by re-running Algorithm 2 from their
//     densest member;
//  4. unassigned points (old noise and new arrivals) are probed as seeds for
//     newly formed clusters.
//
// The amortized per-batch cost is the cost of re-running ALID on the touched
// neighborhoods only, preserving the locality that makes offline ALID scale.
package stream

import (
	"context"
	"fmt"
	"math"

	"alid/internal/affinity"
	"alid/internal/core"
	"alid/internal/lsh"
	"alid/internal/matrix"
)

// Config controls the online clusterer.
type Config struct {
	// Core is the ALID configuration applied to every (re-)detection.
	Core core.Config
	// BatchSize is the number of buffered points per commit.
	BatchSize int
}

// Clusterer maintains dominant clusters over an append-only stream. Committed
// points live in a contiguous matrix.Matrix that grows in place; only the
// uncommitted buffer is row-sliced.
type Clusterer struct {
	cfg    Config
	mat    *matrix.Matrix
	buffer [][]float64
	index  *lsh.Index

	clusters []*core.Cluster
	assigned []int // point -> cluster ordinal, -1 noise

	commits int
	// kernelEvals accumulates kernel evaluations done by commits (dirtiness
	// checks plus detection work). Diagnostic; restored clusterers restart
	// at zero.
	kernelEvals int64

	// frozen marks the matrix and index as published in an immutable View:
	// the next Commit clones both before mutating (copy-on-write), so views
	// stay safe for concurrent readers while the writer moves on.
	frozen bool
}

// New creates an online clusterer seeded with an optional initial batch.
func New(initial [][]float64, cfg Config) (*Clusterer, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	c := &Clusterer{cfg: cfg}
	for i, p := range initial {
		if len(p) != len(initial[0]) {
			return nil, fmt.Errorf("stream: initial point %d has dimension %d, want %d", i, len(p), len(initial[0]))
		}
	}
	if len(initial) > 0 {
		c.buffer = append(c.buffer, initial...)
	}
	return c, nil
}

// Restore reconstructs a clusterer from persisted state: the committed
// matrix, the LSH index built over it, the maintained clusters and the
// per-point labels. It validates cross-component consistency so a corrupt or
// mismatched snapshot fails here rather than on a later commit.
func Restore(cfg Config, mat *matrix.Matrix, index *lsh.Index, clusters []*core.Cluster, labels []int, commits int) (*Clusterer, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if mat == nil || mat.N == 0 {
		return nil, fmt.Errorf("stream: restore with empty matrix")
	}
	if index == nil || index.N() != mat.N {
		return nil, fmt.Errorf("stream: restore index covers %d points, matrix has %d", index.N(), mat.N)
	}
	if index.Dim() != mat.D {
		return nil, fmt.Errorf("stream: restore index hashes dimension %d, matrix has %d", index.Dim(), mat.D)
	}
	if len(labels) != mat.N {
		return nil, fmt.Errorf("stream: restore has %d labels for %d points", len(labels), mat.N)
	}
	for i, l := range labels {
		if l < -1 || l >= len(clusters) {
			return nil, fmt.Errorf("stream: restore label %d of point %d out of range [-1,%d)", l, i, len(clusters))
		}
	}
	for ci, cl := range clusters {
		for _, m := range cl.Members {
			if m < 0 || m >= mat.N {
				return nil, fmt.Errorf("stream: restore cluster %d member %d out of range [0,%d)", ci, m, mat.N)
			}
		}
	}
	return &Clusterer{
		cfg:      cfg,
		mat:      mat,
		index:    index,
		clusters: append([]*core.Cluster(nil), clusters...),
		assigned: append([]int(nil), labels...),
		commits:  commits,
	}, nil
}

// Dim returns the point dimensionality, or 0 if no point has been seen yet.
func (c *Clusterer) Dim() int {
	if c.mat != nil {
		return c.mat.D
	}
	if len(c.buffer) > 0 {
		return len(c.buffer[0])
	}
	return 0
}

// View returns an immutable snapshot of the committed state: the matrix, the
// LSH index, the maintained clusters and per-point labels. The clusters and
// labels slices are fresh copies; the matrix and index are the live ones,
// marked copy-on-write — the next Commit clones them before mutating. Views
// are therefore safe for unlimited concurrent readers, and taking one costs
// O(n) label copy now plus one O(n) clone at the next commit, paid only if
// the stream actually advances.
func (c *Clusterer) View() View {
	c.frozen = true
	return View{
		Mat:         c.mat,
		Index:       c.index,
		Clusters:    append([]*core.Cluster(nil), c.clusters...),
		Labels:      c.Labels(),
		Commits:     c.commits,
		KernelEvals: c.kernelEvals,
	}
}

// View is an immutable published snapshot of a Clusterer. Cluster values are
// shared pointers but are never mutated after detection; Mat and Index are
// protected by the copy-on-write contract of Clusterer.View.
type View struct {
	Mat      *matrix.Matrix
	Index    *lsh.Index
	Clusters []*core.Cluster
	Labels   []int
	Commits  int
	// KernelEvals is the cumulative commit-side kernel-evaluation count at
	// publish time (diagnostic).
	KernelEvals int64
}

// N returns the number of committed points.
func (c *Clusterer) N() int {
	if c.mat == nil {
		return 0
	}
	return c.mat.N
}

// Pending returns the number of buffered, uncommitted points.
func (c *Clusterer) Pending() int { return len(c.buffer) }

// Commits returns how many batch commits have run.
func (c *Clusterer) Commits() int { return c.commits }

// Clusters returns the currently maintained dominant clusters.
func (c *Clusterer) Clusters() []*core.Cluster { return c.clusters }

// Labels returns the current per-point assignment (-1 = noise/unassigned).
func (c *Clusterer) Labels() []int {
	out := make([]int, len(c.assigned))
	copy(out, c.assigned)
	return out
}

// Add buffers a point and commits automatically when the batch is full.
// A point of the wrong width is rejected here, at the boundary, never
// surfacing as a late commit failure or an internal panic.
func (c *Clusterer) Add(ctx context.Context, p []float64) error {
	if d := c.Dim(); d != 0 && len(p) != d {
		return fmt.Errorf("stream: point has dimension %d, want %d", len(p), d)
	}
	if len(p) == 0 {
		return fmt.Errorf("stream: empty point")
	}
	c.buffer = append(c.buffer, p)
	if len(c.buffer) >= c.cfg.BatchSize {
		return c.Commit(ctx)
	}
	return nil
}

// Commit integrates all buffered points into the maintained clustering.
func (c *Clusterer) Commit(ctx context.Context) error {
	if len(c.buffer) == 0 {
		return nil
	}
	// Copy-on-write: if the current matrix/index were published in a View,
	// clone them before any mutation so every outstanding view stays frozen.
	if c.frozen {
		if c.mat != nil {
			c.mat = c.mat.Clone()
		}
		if c.index != nil {
			c.index = c.index.Clone()
		}
		c.frozen = false
	}
	var firstNew int
	if c.mat == nil {
		m, err := matrix.FromRows(c.buffer)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		c.mat = m
	} else {
		first, err := c.mat.AppendRows(c.buffer)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		firstNew = first
	}
	// The buffer is consumed the moment the rows land in the matrix: clearing
	// it (and extending the assignment vector) before any fallible index or
	// detector work keeps Commit retry-safe — a failed commit must never
	// re-append the same points.
	newCount := len(c.buffer)
	c.buffer = c.buffer[:0]
	for i := 0; i < newCount; i++ {
		c.assigned = append(c.assigned, -1)
	}
	c.commits++

	// (Re)build or extend the LSH index from the committed matrix rows.
	if c.index == nil {
		idx, err := lsh.BuildMatrix(c.mat, c.cfg.Core.LSH)
		if err != nil {
			return err
		}
		c.index = idx
	} else {
		newRows := make([][]float64, newCount)
		for i := range newRows {
			newRows[i] = c.mat.Row(firstNew + i)
		}
		if _, err := c.index.Append(newRows); err != nil {
			return err
		}
	}

	det, err := core.NewDetectorMatrixWithIndex(c.mat, c.cfg.Core, c.index)
	if err != nil {
		return err
	}
	cfg := det.Config()

	// Step 2: find clusters made dirty by infective new points.
	kern := cfg.Kernel
	dirty := make([]bool, len(c.clusters))
	for ci, cl := range c.clusters {
		for j := firstNew; j < c.mat.N; j++ {
			var gj float64
			for t, m := range cl.Members {
				gj += cl.Weights[t] * c.affinity(kern, j, m)
			}
			c.kernelEvals += int64(len(cl.Members))
			if gj-cl.Density > cfg.Tol {
				dirty[ci] = true
				break
			}
		}
	}

	// Step 3: re-converge dirty clusters from their densest member.
	for ci, cl := range c.clusters {
		if !dirty[ci] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		seed := heaviestMember(cl)
		for _, m := range cl.Members {
			c.assigned[m] = -1
		}
		fresh, err := det.DetectFrom(ctx, seed, c.availability(ci))
		if err != nil {
			return err
		}
		c.clusters[ci] = fresh
		c.claim(ci)
	}

	// Step 4: probe unassigned new points as seeds for new clusters.
	for j := firstNew; j < c.mat.N; j++ {
		if c.assigned[j] != -1 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		cl, err := det.DetectFrom(ctx, j, c.availability(-1))
		if err != nil {
			return err
		}
		if cl.Density < cfg.DensityThreshold || cl.Size() < cfg.MinClusterSize {
			continue
		}
		ci := len(c.clusters)
		c.clusters = append(c.clusters, cl)
		c.claim(ci)
	}
	// Drop clusters that decayed below the threshold after re-convergence.
	c.compact(cfg.DensityThreshold, cfg.MinClusterSize)
	// The detector's oracle is created fresh for this commit, so its counter
	// is exactly this commit's detection work.
	c.kernelEvals += det.Oracle().Computed()
	return nil
}

// KernelEvals returns the cumulative kernel evaluations spent by commits.
func (c *Clusterer) KernelEvals() int64 { return c.kernelEvals }

// affinity evaluates a_jm over committed points, using the fused squared
// distance for the Euclidean kernel.
func (c *Clusterer) affinity(kern affinity.Kernel, j, m int) float64 {
	if kern.P == 2 {
		return math.Exp(-kern.K * math.Sqrt(c.mat.PairDistSq(j, m)))
	}
	return kern.Affinity(c.mat.Row(j), c.mat.Row(m))
}

// claim labels every member of cluster ci, resolving overlaps to the densest
// cluster — the same rule core.Labels applies to offline detections. The
// availability masks make overlap impossible today (a detection only sees
// unassigned points and the re-converging cluster's own members), so the
// density comparison is a defensive invariant, not a hot path.
func (c *Clusterer) claim(ci int) {
	cl := c.clusters[ci]
	for _, m := range cl.Members {
		if prev := c.assigned[m]; prev != -1 && prev != ci && c.clusters[prev].Density > cl.Density {
			continue
		}
		c.assigned[m] = ci
	}
}

// availability returns the active mask: points unassigned or belonging to
// cluster self (so a re-converging cluster can keep its own members).
func (c *Clusterer) availability(self int) []bool {
	active := make([]bool, c.mat.N)
	for i, a := range c.assigned {
		active[i] = a == -1 || a == self
	}
	return active
}

func (c *Clusterer) compact(minDensity float64, minSize int) {
	var kept []*core.Cluster
	remap := make(map[int]int)
	for ci, cl := range c.clusters {
		if cl.Density >= minDensity && cl.Size() >= minSize {
			remap[ci] = len(kept)
			kept = append(kept, cl)
		}
	}
	for i, a := range c.assigned {
		if a == -1 {
			continue
		}
		if ni, ok := remap[a]; ok {
			c.assigned[i] = ni
		} else {
			c.assigned[i] = -1
		}
	}
	c.clusters = kept
}

func heaviestMember(cl *core.Cluster) int {
	best, bestW := -1, -1.0
	for i, m := range cl.Members {
		if cl.Weights[i] > bestW {
			best, bestW = m, cl.Weights[i]
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("stream: cluster with no members: %+v", cl))
	}
	return best
}
