// Package stream implements an online extension of ALID — the future-work
// direction named in the paper's conclusion ("extend ALID towards the online
// version to efficiently process streaming data sources").
//
// Points arrive one at a time and are committed in batches. On each commit:
//
//  1. the new points are hashed into the existing LSH index (no rebuild);
//  2. every maintained cluster that shares an LSH bucket with a new point is
//     checked for infective arrivals — by Theorem 1 a cluster stays a global
//     dense subgraph unless some vertex has π(s_j, x) > π(x). The check is
//     restricted to co-bucketed clusters: like offline CIVS (Section 4.3),
//     which also only ever examines LSH-retrieved candidates, it declares
//     clusters dense "up to the LSH approximation" — an infective arrival
//     that collides with no member in any of the l tables is missed, with
//     probability that decays with l exactly as the paper's retrieval
//     recall does. In exchange the check costs O(batch) candidate lookups
//     instead of the exhaustive O(batch·n) member scan;
//  3. dirty clusters are re-converged by re-running Algorithm 2 from their
//     densest member;
//  4. unassigned points (old noise and new arrivals) are probed as seeds for
//     newly formed clusters.
//
// The amortized per-batch cost is the cost of re-running ALID on the touched
// neighborhoods only, preserving the locality that makes offline ALID scale.
// When Config.Core.Pool is set, the detections inside each commit (dirty
// re-convergence and new-seed probing) fan out their inner loops over the
// pool — the recluster latency of a commit drops on multicore boxes while
// the committed clusters stay bit-identical to a serial commit.
//
// Published views follow the share-and-seal protocol: View seals the current
// matrix and index state into structurally shared immutable snapshots
// (matrix.Matrix.Snapshot, lsh.Index.Publish) instead of marking the live
// state copy-on-write. Commit then appends freely — sealed chunks and bucket
// segments referenced by outstanding views are never rewritten — so the
// commit path no longer pays the O(n·d) matrix clone + O(n·l) index clone
// that copy-on-write charged after every publish.
//
// Eviction closes the loop for forever-running streams: Evict tombstones
// committed points (ids stay stable; liveness lives in copy-on-write
// bitmaps, honoring the seal invariant), repairs affected clusters, and
// Config.Retention evicts expired points automatically after every commit.
// Physical reclaim is whole-chunk release plus LSH compaction, so a
// retention-bounded stream's memory is proportional to the window, not to
// the points ever seen.
package stream

import (
	"context"
	"fmt"
	"math"
	"slices"
	"time"

	"alid/internal/affinity"
	"alid/internal/core"
	"alid/internal/index"
	"alid/internal/matrix"
	"alid/internal/obs"
)

// Config controls the online clusterer.
type Config struct {
	// Core is the ALID configuration applied to every (re-)detection.
	Core core.Config
	// BatchSize is the number of buffered points per commit.
	BatchSize int
	// Retention bounds the live committed point set: enabled retention
	// evicts expired points automatically after every commit, which is what
	// keeps a forever-running stream's memory proportional to the window
	// instead of the points ever seen.
	Retention Retention
	// Quantize maintains int8 row mirrors on the matrix (matrix.Quantize)
	// so every published View carries the quantized candidate-scan tier.
	// Sealed chunks quantize once and the tail refresh is O(batch), so
	// commit-after-publish stays flat in n. The serving engine enables this;
	// offline detection has no use for it. Mirrors are derived state — never
	// persisted, rebuilt lazily after a restore.
	Quantize bool
	// Obs registers the clusterer's commit/eviction metrics (see metrics.go)
	// with the given registry; nil keeps them unexported. Metrics are pure
	// diagnostics: no commit or eviction decision ever reads one, so the
	// clusterer's determinism contract is unaffected either way.
	Obs *obs.Registry
	// ObsLabels is an optional pre-rendered constant label fragment (e.g.
	// `shard="2"`) appended to every metric this clusterer registers. It is
	// what lets several clusterers — one per serving shard — share one
	// registry without colliding on family name + labels.
	ObsLabels string
}

// Retention is the sliding-window eviction policy.
type Retention struct {
	// MaxPoints caps the number of live committed points; after each commit
	// the oldest live points beyond the cap are evicted. 0 = no cap.
	MaxPoints int
	// MaxAge evicts every point whose commit is older than this. 0 = no
	// age bound. Ages are measured per commit batch; a restored clusterer
	// treats all restored points as born at restore time (commit times are
	// not persisted).
	MaxAge time.Duration
	// Now overrides the clock for MaxAge (deterministic tests); nil means
	// time.Now. Only consulted when MaxAge > 0.
	Now func() time.Time
}

// Enabled reports whether any retention bound is set.
func (r Retention) Enabled() bool { return r.MaxPoints > 0 || r.MaxAge > 0 }

func (r Retention) now() time.Time {
	if r.Now != nil {
		return r.Now()
	}
	return time.Now()
}

// commitStamp records when a commit's points arrived (only kept while
// Retention.MaxAge is set; expired entries are trimmed as their points go).
type commitStamp struct {
	firstID int
	at      time.Time
}

// Clusterer maintains dominant clusters over an append-only stream. Committed
// points live in a segmented matrix.Matrix that grows by appending to its
// tail chunk; only the uncommitted buffer is row-sliced.
type Clusterer struct {
	cfg    Config
	mat    *matrix.Matrix
	buffer [][]float64
	index  index.Index

	clusters []*core.Cluster
	assigned *Labels // point -> cluster ordinal, -1 noise (chunked, COW-shared)
	avail    []bool  // avail[i] = assigned[i] == -1, maintained incrementally

	// det is the long-lived detector: the oracle and index capture c.mat and
	// c.index by reference (both grow in place), so only its dedup scratch
	// needs growing per commit — reusing it avoids an O(n) scratch
	// allocation on every commit.
	det *core.Detector

	commits int
	// kernelEvals accumulates kernel evaluations done by commits (dirtiness
	// checks plus detection work). Diagnostic; restored clusterers restart
	// at zero.
	kernelEvals int64
	// evicted counts points tombstoned so far (manual Evict + retention).
	evicted int
	// evictCursor is the lowest id that may still be live: everything below
	// it is tombstoned. Retention scans for the oldest live points start
	// here, keeping enforcement amortized O(evicted), not O(n) per commit.
	evictCursor int
	// stamps are per-commit arrival times, kept only under a MaxAge policy.
	stamps []commitStamp

	// generation counts id renumberings: CompactGeneration rebuilds the
	// committed state over only the live points, densely renumbered, and
	// bumps this. Ids are stable WITHIN a generation (the PR-5 contract);
	// idMap is the old→new translation of the most recent compaction, so
	// external references survive exactly one generation back (-1 = the old
	// id was dead and has no successor). baseIDs counts ids retired by past
	// compactions: baseIDs + mat.N is the number of ids ever minted, however
	// many generations have recycled the dense range.
	generation int
	idMap      []int
	baseIDs    int

	// scratch for the dirtiness check's candidate retrieval (marker-value
	// dedup, same idiom as CIVS); mark grows with n, cmark with the cluster
	// count, both reused across commits.
	mark    []uint32
	cmark   []uint32
	markGen uint32
	cand    []int32

	// met is the commit/eviction instrumentation — always non-nil, so hot
	// paths observe unconditionally (one atomic add; a no-op under the
	// noobs build tag).
	met *streamMetrics
}

// New creates an online clusterer seeded with an optional initial batch.
func New(initial [][]float64, cfg Config) (*Clusterer, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	c := &Clusterer{cfg: cfg, assigned: &Labels{}, met: newStreamMetrics(cfg.Obs, cfg.ObsLabels)}
	for i, p := range initial {
		if len(p) != len(initial[0]) {
			return nil, fmt.Errorf("stream: initial point %d has dimension %d, want %d", i, len(p), len(initial[0]))
		}
	}
	if len(initial) > 0 {
		c.buffer = append(c.buffer, initial...)
	}
	return c, nil
}

// Restore reconstructs a clusterer from persisted state: the committed
// matrix, the LSH index built over it, the maintained clusters and the
// per-point labels. It validates cross-component consistency so a corrupt or
// mismatched snapshot fails here rather than on a later commit.
func Restore(cfg Config, mat *matrix.Matrix, index index.Index, clusters []*core.Cluster, labels []int, commits int) (*Clusterer, error) {
	return RestoreGeneration(cfg, mat, index, clusters, labels, commits, 0, 0)
}

// RestoreGeneration is Restore with the persisted id-lifecycle counters: a
// clusterer restored from a v5 snapshot resumes numbering new generations
// where the saved one stopped, and `retired` (ids released by the saved
// stream's past compactions) keeps EverSeenIDs monotone across the restart.
// The id map itself is not persisted — it only ever bridges one in-process
// compaction.
func RestoreGeneration(cfg Config, mat *matrix.Matrix, index index.Index, clusters []*core.Cluster, labels []int, commits, generation, retired int) (*Clusterer, error) {
	if generation < 0 {
		return nil, fmt.Errorf("stream: restore generation %d, want >= 0", generation)
	}
	if retired < 0 {
		return nil, fmt.Errorf("stream: restore retired-id count %d, want >= 0", retired)
	}
	if retired > 0 && generation == 0 {
		return nil, fmt.Errorf("stream: restore has %d retired ids at generation 0 (ids are only retired by compactions)", retired)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if mat == nil || mat.N == 0 {
		return nil, fmt.Errorf("stream: restore with empty matrix")
	}
	if index == nil || index.N() != mat.N {
		return nil, fmt.Errorf("stream: restore index covers %d points, matrix has %d", index.N(), mat.N)
	}
	if index.Dim() != mat.D {
		return nil, fmt.Errorf("stream: restore index hashes dimension %d, matrix has %d", index.Dim(), mat.D)
	}
	if len(labels) != mat.N {
		return nil, fmt.Errorf("stream: restore has %d labels for %d points", len(labels), mat.N)
	}
	avail := make([]bool, len(labels))
	for i, l := range labels {
		if l < -1 || l >= len(clusters) {
			return nil, fmt.Errorf("stream: restore label %d of point %d out of range [-1,%d)", l, i, len(clusters))
		}
		if !mat.Live(i) && l != -1 {
			return nil, fmt.Errorf("stream: restore labels evicted point %d into cluster %d", i, l)
		}
		// Evicted points are neither assigned nor available: they must never
		// re-enter a detection.
		avail[i] = l == -1 && mat.Live(i)
	}
	for ci, cl := range clusters {
		// A snapshot is disk input: a memberless or ragged cluster must fail
		// here with an error, not later as a heaviestMember panic on the
		// first commit that re-converges it.
		if len(cl.Members) == 0 {
			return nil, fmt.Errorf("stream: restore cluster %d has no members", ci)
		}
		if len(cl.Weights) != len(cl.Members) {
			return nil, fmt.Errorf("stream: restore cluster %d has %d members but %d weights", ci, len(cl.Members), len(cl.Weights))
		}
		for _, m := range cl.Members {
			if m < 0 || m >= mat.N {
				return nil, fmt.Errorf("stream: restore cluster %d member %d out of range [0,%d)", ci, m, mat.N)
			}
			if !mat.Live(m) {
				return nil, fmt.Errorf("stream: restore cluster %d contains evicted member %d", ci, m)
			}
		}
	}
	c := &Clusterer{
		cfg:        cfg,
		mat:        mat,
		index:      index,
		clusters:   append([]*core.Cluster(nil), clusters...),
		assigned:   labelsFromFlat(labels),
		avail:      avail,
		commits:    commits,
		evicted:    mat.N - mat.LiveCount(),
		generation: generation,
		baseIDs:    retired,
		met:        newStreamMetrics(cfg.Obs, cfg.ObsLabels),
	}
	// The restored index may carry a lifetime compaction count; don't credit
	// the previous process's merges to this one's counter.
	c.met.lastCompactions = index.Compactions()
	// Released matrix chunks (fully evicted ranges) release their label
	// chunks too — the flat label slice re-materialized them as -1 runs.
	if mat.Tombstoned() {
		for ch := 0; ch < c.assigned.numChunks(); ch++ {
			if mat.ChunkReleased(ch) {
				c.assigned.releaseChunk(ch)
			}
		}
	}
	if cfg.Retention.MaxAge > 0 {
		// Commit times are not persisted: restored points age from now.
		c.stamps = []commitStamp{{firstID: 0, at: cfg.Retention.now()}}
	}
	return c, nil
}

// Dim returns the point dimensionality, or 0 if no point has been seen yet.
func (c *Clusterer) Dim() int {
	if c.mat != nil {
		return c.mat.D
	}
	if len(c.buffer) > 0 {
		return len(c.buffer[0])
	}
	return 0
}

// View returns an immutable snapshot of the committed state: the matrix, the
// LSH index, the maintained clusters and per-point labels. The clusters
// slice is a fresh copy; the matrix, index and labels are share-and-seal
// snapshots — sealed chunks and bucket segments are shared with the live
// state by reference, only the mutable tails are copied (the index's tail
// is sealed, and label chunks go copy-on-write). Views are therefore safe
// for unlimited concurrent readers, and both taking one and committing past
// one cost O(batch + chunk pointers), independent of n.
func (c *Clusterer) View() View {
	v := View{
		Clusters:    append([]*core.Cluster(nil), c.clusters...),
		Labels:      c.assigned.snapshot(),
		Commits:     c.commits,
		KernelEvals: c.kernelEvals,
		Generation:  c.generation,
		IDMap:       c.idMap,
		RetiredIDs:  c.baseIDs,
		EverSeenIDs: c.baseIDs + c.N(),
	}
	if c.mat != nil {
		if c.cfg.Quantize {
			c.mat.Quantize()
		}
		v.Mat = c.mat.Snapshot()
	}
	if c.index != nil {
		v.Index = c.index.PublishIndex()
		// Credit the merges this publish (and any before it) performed;
		// Compactions is writer-side state, and View runs on the writer.
		if n := c.index.Compactions(); n > c.met.lastCompactions {
			c.met.lshCompactions.Add(n - c.met.lastCompactions)
			c.met.lastCompactions = n
		}
	}
	c.met.publishes.Inc()
	return v
}

// View is an immutable published snapshot of a Clusterer. Cluster values are
// shared pointers but are never mutated after detection; Mat and Index are
// structurally shared snapshots whose sealed state the live Clusterer never
// rewrites (the share-and-seal contract of Clusterer.View).
type View struct {
	Mat      *matrix.Matrix
	Index    index.Index
	Clusters []*core.Cluster
	Labels   *Labels
	Commits  int
	// KernelEvals is the cumulative commit-side kernel-evaluation count at
	// publish time (diagnostic).
	KernelEvals int64
	// Generation is the id-renumbering epoch this view's ids belong to:
	// CompactGeneration bumps it and every id is reassigned densely over the
	// survivors. Ids are stable within a generation.
	Generation int
	// IDMap translates ids of generation Generation−1 to this generation
	// (-1 = dead, no successor). Nil before the first compaction. Immutable;
	// shared by every view of the same generation.
	IDMap []int
	// RetiredIDs counts ids released by past compactions; persisted (v5) so
	// ever-seen accounting survives restarts.
	RetiredIDs int
	// EverSeenIDs counts ids ever minted across all generations (the
	// quantity the pre-compaction engine's bookkeeping scaled with):
	// RetiredIDs + Mat.N.
	EverSeenIDs int
}

// N returns the number of committed points, evicted ones included (point
// ids are stable across evictions).
func (c *Clusterer) N() int {
	if c.mat == nil {
		return 0
	}
	return c.mat.N
}

// Live returns the number of committed points that have not been evicted.
func (c *Clusterer) Live() int {
	if c.mat == nil {
		return 0
	}
	return c.mat.LiveCount()
}

// Evicted returns the number of committed points tombstoned so far
// (cumulative across generations — compaction does not reset it).
func (c *Clusterer) Evicted() int { return c.evicted }

// Generation returns the current id-renumbering epoch (0 until the first
// CompactGeneration).
func (c *Clusterer) Generation() int { return c.generation }

// EverSeenIDs returns the number of ids ever minted across all generations.
func (c *Clusterer) EverSeenIDs() int { return c.baseIDs + c.N() }

// IDMap returns the old→new id translation of the most recent compaction
// (nil before the first one). The slice is immutable.
func (c *Clusterer) IDMap() []int { return c.idMap }

// Pending returns the number of buffered, uncommitted points.
func (c *Clusterer) Pending() int { return len(c.buffer) }

// Commits returns how many batch commits have run.
func (c *Clusterer) Commits() int { return c.commits }

// Clusters returns the currently maintained dominant clusters in a fresh
// slice. The cluster values are the maintained ones and must not be
// mutated, but the slice itself is the caller's: appending to it or
// reordering it cannot corrupt clusterer state (returning the live internal
// slice used to allow exactly that).
func (c *Clusterer) Clusters() []*core.Cluster { return append([]*core.Cluster(nil), c.clusters...) }

// Labels returns the current per-point assignment (-1 = noise/unassigned)
// as a fresh flat slice.
func (c *Clusterer) Labels() []int { return c.assigned.Flat() }

// Add buffers a point and commits automatically when the batch is full.
// A point of the wrong width is rejected here, at the boundary, never
// surfacing as a late commit failure or an internal panic.
func (c *Clusterer) Add(ctx context.Context, p []float64) error {
	if d := c.Dim(); d != 0 && len(p) != d {
		return fmt.Errorf("stream: point has dimension %d, want %d", len(p), d)
	}
	if len(p) == 0 {
		return fmt.Errorf("stream: empty point")
	}
	c.buffer = append(c.buffer, p)
	if len(c.buffer) >= c.cfg.BatchSize {
		return c.Commit(ctx)
	}
	return nil
}

// Commit integrates all buffered points into the maintained clustering.
func (c *Clusterer) Commit(ctx context.Context) error {
	if len(c.buffer) == 0 {
		return nil
	}
	commitStart := obs.Now()
	var firstNew int
	if c.mat == nil {
		m, err := matrix.FromRows(c.buffer)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		c.mat = m
	} else {
		first, err := c.mat.AppendRows(c.buffer)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		firstNew = first
	}
	// The buffer is consumed the moment the rows land in the matrix: clearing
	// it (and extending the assignment vector) before any fallible index or
	// detector work keeps Commit retry-safe — a failed commit must never
	// re-append the same points.
	newCount := len(c.buffer)
	c.buffer = c.buffer[:0]
	for i := 0; i < newCount; i++ {
		c.assigned.append(-1)
		c.avail = append(c.avail, true)
	}
	c.commits++

	// (Re)build or extend the candidate index from the committed matrix rows.
	// Append touches only each table's mutable tail, never the sealed
	// segments outstanding views share.
	if c.index == nil {
		idx, err := core.BuildIndex(c.mat, c.cfg.Core)
		if err != nil {
			return err
		}
		c.index = idx
	} else {
		newRows := make([][]float64, newCount)
		for i := range newRows {
			newRows[i] = c.mat.Row(firstNew + i)
		}
		if _, err := c.index.Append(newRows); err != nil {
			return err
		}
	}

	// The detector is created once and rebound to the grown dataset by
	// extending its scratch: oracle and index alias c.mat / c.index, which
	// only ever grow in place.
	if err := c.ensureDetector(); err != nil {
		return err
	}
	det := c.det
	cfg := det.Config()

	// Step 2: find clusters made dirty by infective new points. Only
	// clusters sharing an LSH bucket with a new point are tested: each new
	// point's co-bucketed candidates come from the inverted list (no
	// rehashing), their owning clusters are deduplicated, and the full
	// payoff g_j is evaluated against those clusters only. This is the same
	// locality bound CIVS applies to candidate retrieval (Section 4.3); a
	// cluster that shares no bucket with any arrival is declared clean
	// without touching its members, so the check costs O(batch·candidates),
	// independent of n.
	kern := cfg.Kernel
	dirtyStart := obs.Now()
	dirty := make([]bool, len(c.clusters))
	if len(c.clusters) > 0 {
		if len(c.mark) < c.mat.N {
			c.mark = append(c.mark, make([]uint32, c.mat.N-len(c.mark))...)
		}
		if len(c.cmark) < len(c.clusters) {
			c.cmark = append(c.cmark, make([]uint32, len(c.clusters)-len(c.cmark))...)
		}
		for j := firstNew; j < c.mat.N; j++ {
			c.markGen++
			if c.markGen == 0 { // uint32 wrap: reset markers
				clear(c.mark)
				clear(c.cmark)
				c.markGen = 1
			}
			c.cand = c.index.CandidatesByIDInto(j, c.cand[:0], c.mark, c.markGen)
			for _, id := range c.cand {
				ci := c.assigned.At(int(id))
				// A clean cluster is tested against j at most once, however
				// many of its members co-bucket with j (cmark dedup, the
				// same idiom as the assign path's candidate clusters).
				if ci < 0 || dirty[ci] || c.cmark[ci] == c.markGen {
					continue
				}
				c.cmark[ci] = c.markGen
				cl := c.clusters[ci]
				var gj float64
				for t, m := range cl.Members {
					gj += cl.Weights[t] * c.affinity(kern, j, m)
				}
				c.kernelEvals += int64(len(cl.Members))
				if gj-cl.Density > cfg.Tol {
					dirty[ci] = true
				}
			}
		}
	}

	c.met.dirtyCheckDur.ObserveSince(dirtyStart)

	// Step 3: re-converge dirty clusters from their densest member.
	detectStart := obs.Now()
	for ci, cl := range c.clusters {
		if !dirty[ci] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		seed := heaviestMember(cl)
		for _, m := range cl.Members {
			c.assigned.set(m, -1)
			c.avail[m] = true
		}
		fresh, err := det.DetectFrom(ctx, seed, c.avail)
		if err != nil {
			return err
		}
		c.clusters[ci] = fresh
		c.claim(ci)
		c.met.dirtyReconverged.Inc()
	}

	// Step 4: probe unassigned new points as seeds for new clusters.
	for j := firstNew; j < c.mat.N; j++ {
		if c.assigned.At(j) != -1 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		cl, err := det.DetectFrom(ctx, j, c.avail)
		if err != nil {
			return err
		}
		if cl.Density < cfg.DensityThreshold || cl.Size() < cfg.MinClusterSize {
			continue
		}
		ci := len(c.clusters)
		c.clusters = append(c.clusters, cl)
		c.claim(ci)
		c.met.newClusters.Inc()
	}
	// Drop clusters that decayed below the threshold after re-convergence.
	c.compact(cfg.DensityThreshold, cfg.MinClusterSize)
	// The long-lived oracle's counter is drained per commit, so the delta is
	// exactly this commit's detection work.
	c.kernelEvals += det.Oracle().ResetComputed()
	c.met.detectDur.ObserveSince(detectStart)

	// Retention: stamp this commit's arrivals, then evict whatever the
	// policy has expired — the step that keeps a forever-running stream's
	// live set (and therefore its memory) bounded by the window.
	if c.cfg.Retention.MaxAge > 0 {
		c.stamps = append(c.stamps, commitStamp{firstID: firstNew, at: c.cfg.Retention.now()})
	}
	err := c.enforceRetention(ctx)
	c.met.commitBatch.Observe(int64(newCount))
	c.met.commitDur.ObserveSince(commitStart)
	return err
}

// ensureDetector creates the long-lived commit detector on first use and
// rebinds it to the grown dataset afterwards (oracle and index alias c.mat
// and c.index, which only ever grow in place).
func (c *Clusterer) ensureDetector() error {
	if c.det == nil {
		det, err := core.NewDetectorMatrixWithIndex(c.mat, c.cfg.Core, c.index)
		if err != nil {
			return err
		}
		c.det = det
		return nil
	}
	c.det.Grow()
	return nil
}

// evictReconvergeShare is the simplex weight mass a cluster may lose to
// eviction before in-place repair (drop dead members, renormalize,
// recompute density) is no longer trusted and the cluster is re-converged
// from its heaviest surviving member instead.
const evictReconvergeShare = 0.25

// Evict tombstones the given committed points. Evicted points keep their
// ids but disappear from every answer — Labels reports them as noise,
// clusters shed them, LSH queries skip them — exactly as if the stream had
// been rebuilt from the survivors. Affected clusters are repaired: dead
// members are removed and the remaining weights renormalized on the
// simplex; a cluster that lost more than evictReconvergeShare of its weight
// mass (or fell below the minimum size) is re-converged from its heaviest
// surviving member, and clusters left below the density threshold or
// minimum size are dropped. Sealed storage is never rewritten: tombstones
// live in bitmaps, and fully dead chunks release their storage.
//
// Ids out of range [0, N()) are rejected before anything is touched;
// already-evicted ids are skipped (idempotent retries). It returns the
// number of points newly evicted. If ctx is cancelled mid-way, tombstones
// and membership repair are already applied (no cluster ever retains a dead
// member, and labels always agree with cluster membership); clusters whose
// re-convergence did not run remain in their repaired — renormalized but
// not re-converged — form, a valid maintained state.
func (c *Clusterer) Evict(ctx context.Context, ids []int) (int, error) {
	if len(ids) == 0 {
		return 0, nil
	}
	if c.mat == nil {
		return 0, fmt.Errorf("stream: evict before any commit")
	}
	sorted := append([]int(nil), ids...)
	slices.Sort(sorted)
	sorted = slices.Compact(sorted)
	if sorted[0] < 0 || sorted[len(sorted)-1] >= c.mat.N {
		return 0, fmt.Errorf("stream: evict id out of range [0,%d)", c.mat.N)
	}
	live := sorted[:0]
	for _, id := range sorted {
		if c.mat.Live(id) {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return 0, nil
	}
	return len(live), c.evictIDs(ctx, live)
}

// evictIDs applies an eviction. ids must be ascending, unique, in range and
// currently live.
func (c *Clusterer) evictIDs(ctx context.Context, ids []int) error {
	// Phase 1 (never fails): tombstone everywhere and unlabel the dead.
	// Affected clusters are collected in ascending ordinal order so repair
	// and re-convergence are deterministic.
	var affected []int
	seen := make(map[int]bool)
	for _, id := range ids {
		if ci := c.assigned.At(id); ci >= 0 && !seen[ci] {
			seen[ci] = true
			affected = append(affected, ci)
		}
		c.assigned.set(id, -1)
		c.avail[id] = false
	}
	slices.Sort(affected)
	evicted, released := c.mat.Evict(ids)
	c.evicted += evicted
	c.met.evictedPoints.Add(int64(evicted))
	if c.index != nil {
		c.index.Evict(ids)
	}
	c.met.chunksReleased.Add(int64(len(released)))
	for _, ch := range released {
		c.assigned.releaseChunk(ch)
	}
	for c.evictCursor < c.mat.N && !c.mat.Live(c.evictCursor) {
		c.evictCursor++
	}
	if len(affected) == 0 {
		return nil
	}

	// Phase 2 (never fails): membership surgery. Every affected cluster
	// immediately sheds its dead members and renormalizes on the simplex —
	// whatever happens later, no cluster ever holds an evicted member.
	// Published cluster values are immutable; repairs build fresh ones.
	if err := c.ensureDetector(); err != nil {
		return err
	}
	cfg := c.det.Config()
	var reconverge []int
	for _, ci := range affected {
		cl := c.clusters[ci]
		members := make([]int, 0, len(cl.Members))
		weights := make([]float64, 0, len(cl.Members))
		var kept float64
		for t, m := range cl.Members {
			if c.mat.Live(m) {
				members = append(members, m)
				weights = append(weights, cl.Weights[t])
				kept += cl.Weights[t]
			}
		}
		if len(members) == 0 || kept <= 0 {
			// Nothing survives: an empty husk the final compact drops.
			c.clusters[ci] = &core.Cluster{Seed: cl.Seed}
			continue
		}
		for t := range weights {
			weights[t] /= kept
		}
		repaired := &core.Cluster{
			Members:         members,
			Weights:         weights,
			Density:         c.clusterDensity(cfg.Kernel, members, weights),
			Seed:            cl.Seed,
			OuterIterations: cl.OuterIterations,
			LIDIterations:   cl.LIDIterations,
			PeakEntries:     cl.PeakEntries,
		}
		c.clusters[ci] = repaired
		if 1-kept > evictReconvergeShare || len(members) < cfg.MinClusterSize {
			reconverge = append(reconverge, ci)
		}
	}

	// Phase 3 (cancellable): re-converge clusters that lost real support,
	// reusing the dirty-cluster machinery — release the survivors, re-run
	// Algorithm 2 from the heaviest one, reclaim.
	for _, ci := range reconverge {
		if err := ctx.Err(); err != nil {
			return err
		}
		cl := c.clusters[ci]
		seed := heaviestMember(cl)
		for _, m := range cl.Members {
			c.assigned.set(m, -1)
			c.avail[m] = true
		}
		fresh, err := c.det.DetectFrom(ctx, seed, c.avail)
		if err != nil {
			// Reclaim the repaired cluster before bailing so labels and
			// membership never disagree: the cluster survives in its
			// repaired (renormalized, not re-converged) form, which is a
			// valid maintained state.
			c.claim(ci)
			return err
		}
		c.clusters[ci] = fresh
		c.claim(ci)
		c.met.evictReconverged.Inc()
	}
	c.compact(cfg.DensityThreshold, cfg.MinClusterSize)
	c.kernelEvals += c.det.Oracle().ResetComputed()
	return nil
}

// CompactGeneration renumbers the live points into a fresh dense generation
// and releases every piece of state that scaled with points EVER seen rather
// than points live: matrix chunk headers and liveness bitmaps, index key
// chunks and tombstone bitmaps, label chunks, the dirtiness-check scratch
// and the eviction cursor. The rebuild takes exactly the first-commit path —
// matrix.FromRows over the survivor rows plus core.BuildIndex under the same
// configuration — so the compacted state is bit-identical to a fresh
// clusterer restored from only the survivors: every maintained cluster,
// weight, density and label survives with its ids remapped through the
// monotone old→new map (retrievable via IDMap for one generation back).
// A dead cluster seed is remapped to the cluster's heaviest surviving
// member, the same point re-convergence would seed from.
//
// It returns the number of ids released (old N − live N); a clusterer with
// no tombstones returns 0 without touching anything. All fallible work runs
// before any mutation, so a failed compaction leaves the clusterer intact.
// When every point is dead the clusterer resets to the empty pre-first-
// commit state (the next commit starts generation's id 0 afresh).
func (c *Clusterer) CompactGeneration() (int, error) {
	if c.mat == nil || !c.mat.Tombstoned() {
		return 0, nil
	}
	start := obs.Now()
	oldN := c.mat.N
	oldToNew := make([]int, oldN)
	liveRows := make([][]float64, 0, c.mat.LiveCount())
	newStamps := make([]commitStamp, len(c.stamps))
	si := 0
	for i := 0; i < oldN; i++ {
		for si < len(c.stamps) && c.stamps[si].firstID == i {
			newStamps[si] = commitStamp{firstID: len(liveRows), at: c.stamps[si].at}
			si++
		}
		if !c.mat.Live(i) {
			oldToNew[i] = -1
			continue
		}
		oldToNew[i] = len(liveRows)
		liveRows = append(liveRows, c.mat.Row(i))
	}
	for ; si < len(c.stamps); si++ { // defensive: firstID past the scan
		newStamps[si] = commitStamp{firstID: len(liveRows), at: c.stamps[si].at}
	}
	newN := len(liveRows)
	released := oldN - newN

	if newN == 0 {
		// Everything was dead: reset to the empty pre-first-commit state.
		c.mat, c.index, c.clusters, c.assigned, c.avail = nil, nil, nil, &Labels{}, nil
		c.det, c.mark, c.cmark, c.markGen, c.cand = nil, nil, nil, 0, nil
		c.stamps, c.evictCursor = nil, 0
		c.generation++
		c.idMap = oldToNew
		c.baseIDs += oldN
		c.met.generationCompactions.Inc()
		c.met.compactionReleased.Add(int64(released))
		c.met.compactionDur.ObserveSince(start)
		return released, nil
	}

	newMat, err := matrix.FromRows(liveRows)
	if err != nil {
		return 0, fmt.Errorf("stream: compact: %w", err)
	}
	newIdx, err := core.BuildIndex(newMat, c.cfg.Core)
	if err != nil {
		return 0, fmt.Errorf("stream: compact: %w", err)
	}
	newClusters := make([]*core.Cluster, len(c.clusters))
	for ci, cl := range c.clusters {
		nc := &core.Cluster{
			Members:         make([]int, len(cl.Members)),
			Weights:         append([]float64(nil), cl.Weights...),
			Density:         cl.Density,
			OuterIterations: cl.OuterIterations,
			LIDIterations:   cl.LIDIterations,
			PeakEntries:     cl.PeakEntries,
		}
		for t, m := range cl.Members {
			if m < 0 || m >= oldN || oldToNew[m] < 0 {
				return 0, fmt.Errorf("stream: compact: cluster %d references dead member %d", ci, m)
			}
			nc.Members[t] = oldToNew[m]
		}
		if cl.Seed >= 0 && cl.Seed < oldN && oldToNew[cl.Seed] >= 0 {
			nc.Seed = oldToNew[cl.Seed]
		} else {
			nc.Seed = oldToNew[heaviestMember(cl)]
		}
		newClusters[ci] = nc
	}
	newLabels := make([]int, newN)
	newAvail := make([]bool, newN)
	for i := 0; i < oldN; i++ {
		if ni := oldToNew[i]; ni >= 0 {
			newLabels[ni] = c.assigned.At(i)
			newAvail[ni] = newLabels[ni] == -1
		}
	}

	// Point of no return: swap in the compacted state and drop every
	// ever-seen-scaled structure. The long-lived detector aliases the old
	// matrix and index by reference, so it must be rebuilt lazily against
	// the new ones; the marker scratch is id-indexed and dies with the ids.
	c.mat = newMat
	c.index = newIdx
	c.clusters = newClusters
	c.assigned = labelsFromFlat(newLabels)
	c.avail = newAvail
	c.stamps = newStamps
	c.det, c.mark, c.cmark, c.markGen, c.cand = nil, nil, nil, 0, nil
	c.evictCursor = 0
	c.generation++
	c.idMap = oldToNew
	c.baseIDs += released
	// Don't credit the rebuild's segment merges as stream-lifetime LSH
	// compactions: the counter tracks the live index's publish-time merges.
	c.met.lastCompactions = newIdx.Compactions()
	c.met.generationCompactions.Inc()
	c.met.compactionReleased.Add(int64(released))
	c.met.compactionDur.ObserveSince(start)
	return released, nil
}

// clusterDensity recomputes π(x) = Σ_i Σ_j w_i·w_j·a_ij over the given
// support (a_ii = 0), charging the kernel evaluations to the commit
// counter. Used by in-place eviction repair, where the converged weights
// survive renormalization but the cached density does not.
func (c *Clusterer) clusterDensity(kern affinity.Kernel, members []int, weights []float64) float64 {
	var pi float64
	for i := 1; i < len(members); i++ {
		for j := 0; j < i; j++ {
			pi += 2 * weights[i] * weights[j] * c.affinity(kern, members[i], members[j])
		}
	}
	c.kernelEvals += int64(len(members) * (len(members) - 1) / 2)
	return pi
}

// enforceRetention evicts whatever the retention policy has expired: first
// every point from commits older than MaxAge, then the oldest live points
// beyond MaxPoints. Runs after every commit; both scans start at the evict
// cursor, so enforcement is amortized O(points evicted), independent of N.
func (c *Clusterer) enforceRetention(ctx context.Context) error {
	r := c.cfg.Retention
	if !r.Enabled() || c.mat == nil {
		return nil
	}
	var ids []int
	cut := c.evictCursor
	if r.MaxAge > 0 {
		deadline := r.now().Add(-r.MaxAge)
		j := 0
		for j < len(c.stamps) && !c.stamps[j].at.After(deadline) {
			j++
		}
		if j > 0 {
			cut = c.mat.N
			if j < len(c.stamps) {
				cut = c.stamps[j].firstID
			}
			c.stamps = append([]commitStamp(nil), c.stamps[j:]...)
			for i := c.evictCursor; i < cut; i++ {
				if c.mat.Live(i) {
					ids = append(ids, i)
				}
			}
		}
	}
	if r.MaxPoints > 0 {
		excess := c.mat.LiveCount() - len(ids) - r.MaxPoints
		for i := max(cut, c.evictCursor); excess > 0 && i < c.mat.N; i++ {
			if c.mat.Live(i) {
				ids = append(ids, i)
				excess--
			}
		}
	}
	if len(ids) == 0 {
		return nil
	}
	return c.evictIDs(ctx, ids)
}

// KernelEvals returns the cumulative kernel evaluations spent by commits.
func (c *Clusterer) KernelEvals() int64 { return c.kernelEvals }

// affinity evaluates a_jm over committed points, using the fused squared
// distance for the Euclidean kernel.
func (c *Clusterer) affinity(kern affinity.Kernel, j, m int) float64 {
	if kern.P == 2 {
		return math.Exp(-kern.K * math.Sqrt(c.mat.PairDistSq(j, m)))
	}
	return kern.Affinity(c.mat.Row(j), c.mat.Row(m))
}

// claim labels every member of cluster ci, resolving overlaps to the densest
// cluster — the same rule core.Labels applies to offline detections. The
// availability masks make overlap impossible today (a detection only sees
// unassigned points and the re-converging cluster's own members), so the
// density comparison is a defensive invariant, not a hot path.
func (c *Clusterer) claim(ci int) {
	cl := c.clusters[ci]
	for _, m := range cl.Members {
		if prev := c.assigned.At(m); prev != -1 && prev != ci && c.clusters[prev].Density > cl.Density {
			continue
		}
		c.assigned.set(m, ci)
		c.avail[m] = false
	}
}

// compact drops clusters below the density threshold or minimum size,
// remapping labels. When nothing is dropped it returns without the O(n)
// relabel pass.
func (c *Clusterer) compact(minDensity float64, minSize int) {
	dropped := false
	for _, cl := range c.clusters {
		if cl.Density < minDensity || cl.Size() < minSize {
			dropped = true
			break
		}
	}
	if !dropped {
		return
	}
	var kept []*core.Cluster
	remap := make(map[int]int)
	for ci, cl := range c.clusters {
		if cl.Density >= minDensity && cl.Size() >= minSize {
			remap[ci] = len(kept)
			kept = append(kept, cl)
		}
	}
	// Relabel chunk-wise, skipping released chunks (fully evicted ranges):
	// under retention the relabel pass stays O(live + chunk count) however
	// many points were ever committed.
	for ch := 0; ch < c.assigned.numChunks(); ch++ {
		if c.assigned.chunkReleased(ch) {
			continue
		}
		hi := min((ch+1)*labelChunk, c.assigned.Len())
		for i := ch * labelChunk; i < hi; i++ {
			a := c.assigned.At(i)
			if a == -1 {
				continue
			}
			if ni, ok := remap[a]; ok {
				c.assigned.set(i, ni)
			} else {
				c.assigned.set(i, -1)
				c.avail[i] = true
			}
		}
	}
	c.clusters = kept
}

func heaviestMember(cl *core.Cluster) int {
	best, bestW := -1, -1.0
	for i, m := range cl.Members {
		if cl.Weights[i] > bestW {
			best, bestW = m, cl.Weights[i]
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("stream: cluster with no members: %+v", cl))
	}
	return best
}
