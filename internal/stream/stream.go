// Package stream implements an online extension of ALID — the future-work
// direction named in the paper's conclusion ("extend ALID towards the online
// version to efficiently process streaming data sources").
//
// Points arrive one at a time and are committed in batches. On each commit:
//
//  1. the new points are hashed into the existing LSH index (no rebuild);
//  2. every maintained cluster that shares an LSH bucket with a new point is
//     checked for infective arrivals — by Theorem 1 a cluster stays a global
//     dense subgraph unless some vertex has π(s_j, x) > π(x). The check is
//     restricted to co-bucketed clusters: like offline CIVS (Section 4.3),
//     which also only ever examines LSH-retrieved candidates, it declares
//     clusters dense "up to the LSH approximation" — an infective arrival
//     that collides with no member in any of the l tables is missed, with
//     probability that decays with l exactly as the paper's retrieval
//     recall does. In exchange the check costs O(batch) candidate lookups
//     instead of the exhaustive O(batch·n) member scan;
//  3. dirty clusters are re-converged by re-running Algorithm 2 from their
//     densest member;
//  4. unassigned points (old noise and new arrivals) are probed as seeds for
//     newly formed clusters.
//
// The amortized per-batch cost is the cost of re-running ALID on the touched
// neighborhoods only, preserving the locality that makes offline ALID scale.
// When Config.Core.Pool is set, the detections inside each commit (dirty
// re-convergence and new-seed probing) fan out their inner loops over the
// pool — the recluster latency of a commit drops on multicore boxes while
// the committed clusters stay bit-identical to a serial commit.
//
// Published views follow the share-and-seal protocol: View seals the current
// matrix and index state into structurally shared immutable snapshots
// (matrix.Matrix.Snapshot, lsh.Index.Publish) instead of marking the live
// state copy-on-write. Commit then appends freely — sealed chunks and bucket
// segments referenced by outstanding views are never rewritten — so the
// commit path no longer pays the O(n·d) matrix clone + O(n·l) index clone
// that copy-on-write charged after every publish.
package stream

import (
	"context"
	"fmt"
	"math"

	"alid/internal/affinity"
	"alid/internal/core"
	"alid/internal/lsh"
	"alid/internal/matrix"
)

// Config controls the online clusterer.
type Config struct {
	// Core is the ALID configuration applied to every (re-)detection.
	Core core.Config
	// BatchSize is the number of buffered points per commit.
	BatchSize int
}

// Clusterer maintains dominant clusters over an append-only stream. Committed
// points live in a segmented matrix.Matrix that grows by appending to its
// tail chunk; only the uncommitted buffer is row-sliced.
type Clusterer struct {
	cfg    Config
	mat    *matrix.Matrix
	buffer [][]float64
	index  *lsh.Index

	clusters []*core.Cluster
	assigned *Labels // point -> cluster ordinal, -1 noise (chunked, COW-shared)
	avail    []bool  // avail[i] = assigned[i] == -1, maintained incrementally

	// det is the long-lived detector: the oracle and index capture c.mat and
	// c.index by reference (both grow in place), so only its dedup scratch
	// needs growing per commit — reusing it avoids an O(n) scratch
	// allocation on every commit.
	det *core.Detector

	commits int
	// kernelEvals accumulates kernel evaluations done by commits (dirtiness
	// checks plus detection work). Diagnostic; restored clusterers restart
	// at zero.
	kernelEvals int64

	// scratch for the dirtiness check's candidate retrieval (marker-value
	// dedup, same idiom as CIVS); mark grows with n, cmark with the cluster
	// count, both reused across commits.
	mark    []uint32
	cmark   []uint32
	markGen uint32
	cand    []int32
}

// New creates an online clusterer seeded with an optional initial batch.
func New(initial [][]float64, cfg Config) (*Clusterer, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	c := &Clusterer{cfg: cfg, assigned: &Labels{}}
	for i, p := range initial {
		if len(p) != len(initial[0]) {
			return nil, fmt.Errorf("stream: initial point %d has dimension %d, want %d", i, len(p), len(initial[0]))
		}
	}
	if len(initial) > 0 {
		c.buffer = append(c.buffer, initial...)
	}
	return c, nil
}

// Restore reconstructs a clusterer from persisted state: the committed
// matrix, the LSH index built over it, the maintained clusters and the
// per-point labels. It validates cross-component consistency so a corrupt or
// mismatched snapshot fails here rather than on a later commit.
func Restore(cfg Config, mat *matrix.Matrix, index *lsh.Index, clusters []*core.Cluster, labels []int, commits int) (*Clusterer, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if mat == nil || mat.N == 0 {
		return nil, fmt.Errorf("stream: restore with empty matrix")
	}
	if index == nil || index.N() != mat.N {
		return nil, fmt.Errorf("stream: restore index covers %d points, matrix has %d", index.N(), mat.N)
	}
	if index.Dim() != mat.D {
		return nil, fmt.Errorf("stream: restore index hashes dimension %d, matrix has %d", index.Dim(), mat.D)
	}
	if len(labels) != mat.N {
		return nil, fmt.Errorf("stream: restore has %d labels for %d points", len(labels), mat.N)
	}
	avail := make([]bool, len(labels))
	for i, l := range labels {
		if l < -1 || l >= len(clusters) {
			return nil, fmt.Errorf("stream: restore label %d of point %d out of range [-1,%d)", l, i, len(clusters))
		}
		avail[i] = l == -1
	}
	for ci, cl := range clusters {
		for _, m := range cl.Members {
			if m < 0 || m >= mat.N {
				return nil, fmt.Errorf("stream: restore cluster %d member %d out of range [0,%d)", ci, m, mat.N)
			}
		}
	}
	return &Clusterer{
		cfg:      cfg,
		mat:      mat,
		index:    index,
		clusters: append([]*core.Cluster(nil), clusters...),
		assigned: labelsFromFlat(labels),
		avail:    avail,
		commits:  commits,
	}, nil
}

// Dim returns the point dimensionality, or 0 if no point has been seen yet.
func (c *Clusterer) Dim() int {
	if c.mat != nil {
		return c.mat.D
	}
	if len(c.buffer) > 0 {
		return len(c.buffer[0])
	}
	return 0
}

// View returns an immutable snapshot of the committed state: the matrix, the
// LSH index, the maintained clusters and per-point labels. The clusters
// slice is a fresh copy; the matrix, index and labels are share-and-seal
// snapshots — sealed chunks and bucket segments are shared with the live
// state by reference, only the mutable tails are copied (the index's tail
// is sealed, and label chunks go copy-on-write). Views are therefore safe
// for unlimited concurrent readers, and both taking one and committing past
// one cost O(batch + chunk pointers), independent of n.
func (c *Clusterer) View() View {
	v := View{
		Clusters:    append([]*core.Cluster(nil), c.clusters...),
		Labels:      c.assigned.snapshot(),
		Commits:     c.commits,
		KernelEvals: c.kernelEvals,
	}
	if c.mat != nil {
		v.Mat = c.mat.Snapshot()
	}
	if c.index != nil {
		v.Index = c.index.Publish()
	}
	return v
}

// View is an immutable published snapshot of a Clusterer. Cluster values are
// shared pointers but are never mutated after detection; Mat and Index are
// structurally shared snapshots whose sealed state the live Clusterer never
// rewrites (the share-and-seal contract of Clusterer.View).
type View struct {
	Mat      *matrix.Matrix
	Index    *lsh.Index
	Clusters []*core.Cluster
	Labels   *Labels
	Commits  int
	// KernelEvals is the cumulative commit-side kernel-evaluation count at
	// publish time (diagnostic).
	KernelEvals int64
}

// N returns the number of committed points.
func (c *Clusterer) N() int {
	if c.mat == nil {
		return 0
	}
	return c.mat.N
}

// Pending returns the number of buffered, uncommitted points.
func (c *Clusterer) Pending() int { return len(c.buffer) }

// Commits returns how many batch commits have run.
func (c *Clusterer) Commits() int { return c.commits }

// Clusters returns the currently maintained dominant clusters.
func (c *Clusterer) Clusters() []*core.Cluster { return c.clusters }

// Labels returns the current per-point assignment (-1 = noise/unassigned)
// as a fresh flat slice.
func (c *Clusterer) Labels() []int { return c.assigned.Flat() }

// Add buffers a point and commits automatically when the batch is full.
// A point of the wrong width is rejected here, at the boundary, never
// surfacing as a late commit failure or an internal panic.
func (c *Clusterer) Add(ctx context.Context, p []float64) error {
	if d := c.Dim(); d != 0 && len(p) != d {
		return fmt.Errorf("stream: point has dimension %d, want %d", len(p), d)
	}
	if len(p) == 0 {
		return fmt.Errorf("stream: empty point")
	}
	c.buffer = append(c.buffer, p)
	if len(c.buffer) >= c.cfg.BatchSize {
		return c.Commit(ctx)
	}
	return nil
}

// Commit integrates all buffered points into the maintained clustering.
func (c *Clusterer) Commit(ctx context.Context) error {
	if len(c.buffer) == 0 {
		return nil
	}
	var firstNew int
	if c.mat == nil {
		m, err := matrix.FromRows(c.buffer)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		c.mat = m
	} else {
		first, err := c.mat.AppendRows(c.buffer)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		firstNew = first
	}
	// The buffer is consumed the moment the rows land in the matrix: clearing
	// it (and extending the assignment vector) before any fallible index or
	// detector work keeps Commit retry-safe — a failed commit must never
	// re-append the same points.
	newCount := len(c.buffer)
	c.buffer = c.buffer[:0]
	for i := 0; i < newCount; i++ {
		c.assigned.append(-1)
		c.avail = append(c.avail, true)
	}
	c.commits++

	// (Re)build or extend the LSH index from the committed matrix rows.
	// Append touches only each table's mutable tail, never the sealed
	// segments outstanding views share.
	if c.index == nil {
		idx, err := lsh.BuildMatrix(c.mat, c.cfg.Core.LSH)
		if err != nil {
			return err
		}
		c.index = idx
	} else {
		newRows := make([][]float64, newCount)
		for i := range newRows {
			newRows[i] = c.mat.Row(firstNew + i)
		}
		if _, err := c.index.Append(newRows); err != nil {
			return err
		}
	}

	// The detector is created once and rebound to the grown dataset by
	// extending its scratch: oracle and index alias c.mat / c.index, which
	// only ever grow in place.
	if c.det == nil {
		det, err := core.NewDetectorMatrixWithIndex(c.mat, c.cfg.Core, c.index)
		if err != nil {
			return err
		}
		c.det = det
	} else {
		c.det.Grow()
	}
	det := c.det
	cfg := det.Config()

	// Step 2: find clusters made dirty by infective new points. Only
	// clusters sharing an LSH bucket with a new point are tested: each new
	// point's co-bucketed candidates come from the inverted list (no
	// rehashing), their owning clusters are deduplicated, and the full
	// payoff g_j is evaluated against those clusters only. This is the same
	// locality bound CIVS applies to candidate retrieval (Section 4.3); a
	// cluster that shares no bucket with any arrival is declared clean
	// without touching its members, so the check costs O(batch·candidates),
	// independent of n.
	kern := cfg.Kernel
	dirty := make([]bool, len(c.clusters))
	if len(c.clusters) > 0 {
		if len(c.mark) < c.mat.N {
			c.mark = append(c.mark, make([]uint32, c.mat.N-len(c.mark))...)
		}
		if len(c.cmark) < len(c.clusters) {
			c.cmark = append(c.cmark, make([]uint32, len(c.clusters)-len(c.cmark))...)
		}
		for j := firstNew; j < c.mat.N; j++ {
			c.markGen++
			if c.markGen == 0 { // uint32 wrap: reset markers
				clear(c.mark)
				clear(c.cmark)
				c.markGen = 1
			}
			c.cand = c.index.CandidatesByIDInto(j, c.cand[:0], c.mark, c.markGen)
			for _, id := range c.cand {
				ci := c.assigned.At(int(id))
				// A clean cluster is tested against j at most once, however
				// many of its members co-bucket with j (cmark dedup, the
				// same idiom as the assign path's candidate clusters).
				if ci < 0 || dirty[ci] || c.cmark[ci] == c.markGen {
					continue
				}
				c.cmark[ci] = c.markGen
				cl := c.clusters[ci]
				var gj float64
				for t, m := range cl.Members {
					gj += cl.Weights[t] * c.affinity(kern, j, m)
				}
				c.kernelEvals += int64(len(cl.Members))
				if gj-cl.Density > cfg.Tol {
					dirty[ci] = true
				}
			}
		}
	}

	// Step 3: re-converge dirty clusters from their densest member.
	for ci, cl := range c.clusters {
		if !dirty[ci] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		seed := heaviestMember(cl)
		for _, m := range cl.Members {
			c.assigned.set(m, -1)
			c.avail[m] = true
		}
		fresh, err := det.DetectFrom(ctx, seed, c.avail)
		if err != nil {
			return err
		}
		c.clusters[ci] = fresh
		c.claim(ci)
	}

	// Step 4: probe unassigned new points as seeds for new clusters.
	for j := firstNew; j < c.mat.N; j++ {
		if c.assigned.At(j) != -1 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		cl, err := det.DetectFrom(ctx, j, c.avail)
		if err != nil {
			return err
		}
		if cl.Density < cfg.DensityThreshold || cl.Size() < cfg.MinClusterSize {
			continue
		}
		ci := len(c.clusters)
		c.clusters = append(c.clusters, cl)
		c.claim(ci)
	}
	// Drop clusters that decayed below the threshold after re-convergence.
	c.compact(cfg.DensityThreshold, cfg.MinClusterSize)
	// The long-lived oracle's counter is drained per commit, so the delta is
	// exactly this commit's detection work.
	c.kernelEvals += det.Oracle().ResetComputed()
	return nil
}

// KernelEvals returns the cumulative kernel evaluations spent by commits.
func (c *Clusterer) KernelEvals() int64 { return c.kernelEvals }

// affinity evaluates a_jm over committed points, using the fused squared
// distance for the Euclidean kernel.
func (c *Clusterer) affinity(kern affinity.Kernel, j, m int) float64 {
	if kern.P == 2 {
		return math.Exp(-kern.K * math.Sqrt(c.mat.PairDistSq(j, m)))
	}
	return kern.Affinity(c.mat.Row(j), c.mat.Row(m))
}

// claim labels every member of cluster ci, resolving overlaps to the densest
// cluster — the same rule core.Labels applies to offline detections. The
// availability masks make overlap impossible today (a detection only sees
// unassigned points and the re-converging cluster's own members), so the
// density comparison is a defensive invariant, not a hot path.
func (c *Clusterer) claim(ci int) {
	cl := c.clusters[ci]
	for _, m := range cl.Members {
		if prev := c.assigned.At(m); prev != -1 && prev != ci && c.clusters[prev].Density > cl.Density {
			continue
		}
		c.assigned.set(m, ci)
		c.avail[m] = false
	}
}

// compact drops clusters below the density threshold or minimum size,
// remapping labels. When nothing is dropped it returns without the O(n)
// relabel pass.
func (c *Clusterer) compact(minDensity float64, minSize int) {
	dropped := false
	for _, cl := range c.clusters {
		if cl.Density < minDensity || cl.Size() < minSize {
			dropped = true
			break
		}
	}
	if !dropped {
		return
	}
	var kept []*core.Cluster
	remap := make(map[int]int)
	for ci, cl := range c.clusters {
		if cl.Density >= minDensity && cl.Size() >= minSize {
			remap[ci] = len(kept)
			kept = append(kept, cl)
		}
	}
	for i := 0; i < c.assigned.Len(); i++ {
		a := c.assigned.At(i)
		if a == -1 {
			continue
		}
		if ni, ok := remap[a]; ok {
			c.assigned.set(i, ni)
		} else {
			c.assigned.set(i, -1)
			c.avail[i] = true
		}
	}
	c.clusters = kept
}

func heaviestMember(cl *core.Cluster) int {
	best, bestW := -1, -1.0
	for i, m := range cl.Members {
		if cl.Weights[i] > bestW {
			best, bestW = m, cl.Weights[i]
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("stream: cluster with no members: %+v", cl))
	}
	return best
}
